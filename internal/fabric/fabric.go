package fabric

import (
	"fmt"
	"sync"

	"gompi/internal/abort"
	"gompi/internal/instr"
	"gompi/internal/match"
	"gompi/internal/metrics"
	"gompi/internal/stall"
	"gompi/internal/vtime"
)

// Meter is what the fabric charges costs to: the calling rank's
// instruction profile and virtual clock. proc.Rank implements it. The
// fabric only ever charges the meter bound to the endpoint whose owner
// goroutine is making the call, so meters need no synchronization.
type Meter interface {
	// Charge records n MPI-library instructions (and advances the
	// clock by n cycles at CPI 1.0).
	Charge(cat instr.Category, n int64)
	// ChargeCycles records n non-instruction cycles (transport,
	// compute).
	ChargeCycles(cat instr.Category, n int64)
	// Now returns the rank's current virtual time.
	Now() vtime.Time
	// Sync advances the rank's clock to t if t is in the future.
	Sync(t vtime.Time)
	// Metrics returns the rank's observability registry. Send-side
	// counters accrue through the calling endpoint's meter;
	// receive-side counters accrue through the destination endpoint's
	// meter under that endpoint's lock.
	Metrics() *metrics.Rank
}

// Fabric is one simulated network connecting n endpoints (one per
// rank), each split into nvci virtual communication interfaces. It owns
// the RDMA memory-region registry.
type Fabric struct {
	prof    Profile
	nvci    int
	eps     []*Endpoint
	aborted abort.Flag

	// stall is the optional stall watchdog (nil when disabled; all its
	// methods are nil-safe). Park sites register blocked goroutines
	// with it and every event broadcast bumps its activity counter.
	stall *stall.Monitor

	regMu   sync.RWMutex
	regions map[regionKey]*region
	nextKey int
}

type regionKey struct {
	rank int
	key  int
}

// New creates a fabric with n single-VCI endpoints using the given cost
// profile — behaviorally identical to the pre-VCI fabric.
func New(prof Profile, n int) *Fabric { return NewVCI(prof, n, 1) }

// NewVCI creates a fabric whose endpoints each expose nvci virtual
// communication interfaces. nvci below 1 is treated as 1.
func NewVCI(prof Profile, n, nvci int) *Fabric {
	if nvci < 1 {
		nvci = 1
	}
	f := &Fabric{
		prof:    prof,
		nvci:    nvci,
		eps:     make([]*Endpoint, n),
		regions: make(map[regionKey]*region),
	}
	for i := range f.eps {
		f.eps[i] = newEndpoint(f, i, nvci)
	}
	return f
}

// Profile returns the fabric's cost profile.
func (f *Fabric) Profile() Profile { return f.prof }

// Size returns the number of endpoints.
func (f *Fabric) Size() int { return len(f.eps) }

// NVCI returns the per-endpoint virtual-interface count.
func (f *Fabric) NVCI() int { return f.nvci }

// VCIFor is the deterministic traffic-to-VCI hash over the fields both
// sides of a transfer agree on: communicator context and tag, never the
// source (so MPI_ANY_SOURCE receives with an exact tag still name one
// VCI). Contexts are allocated in pt2pt/collective pairs (even/odd), so
// the pair index — not the raw context — feeds the hash, keeping
// consecutive communicators spread across VCIs.
func (f *Fabric) VCIFor(bits match.Bits) int {
	if f.nvci == 1 {
		return 0
	}
	h := (uint32(bits.Context())>>1)*0x9E3779B1 ^ uint32(bits.Tag())*0x85EBCA6B
	return int(h>>16) % f.nvci
}

// VCIForCtx maps a whole communicator onto one private VCI — the
// hint-refined mapping: a communicator asserting it never uses
// wildcards gets every tag on a single interface, so even its probes
// and receives never touch the cross-VCI path.
func (f *Fabric) VCIForCtx(ctx uint16) int {
	if f.nvci == 1 {
		return 0
	}
	return int(ctx>>1) % f.nvci
}

// SetStall attaches the stall watchdog. Must be called before
// communication starts; nil detaches.
func (f *Fabric) SetStall(m *stall.Monitor) { f.stall = m }

// Abort marks the fabric dead and wakes every endpoint: blocked waits
// panic with abort.ErrWorldAborted, which the rank runtime converts to
// errors. Called when any rank fails, so the original error surfaces
// instead of a hang.
func (f *Fabric) Abort() {
	f.aborted.Raise()
	for _, ep := range f.eps {
		ep.Wake()
	}
}

// Aborted reports whether Abort was called.
func (f *Fabric) Aborted() bool { return f.aborted.Raised() }

// Endpoint returns rank's endpoint.
func (f *Fabric) Endpoint(rank int) *Endpoint {
	if rank < 0 || rank >= len(f.eps) {
		panic(fmt.Sprintf("fabric: endpoint %d out of range [0,%d)", rank, len(f.eps)))
	}
	return f.eps[rank]
}
