package fabric

import (
	"fmt"
	"sync"

	"gompi/internal/abort"
	"gompi/internal/instr"
	"gompi/internal/metrics"
	"gompi/internal/vtime"
)

// Meter is what the fabric charges costs to: the calling rank's
// instruction profile and virtual clock. proc.Rank implements it. The
// fabric only ever charges the meter bound to the endpoint whose owner
// goroutine is making the call, so meters need no synchronization.
type Meter interface {
	// Charge records n MPI-library instructions (and advances the
	// clock by n cycles at CPI 1.0).
	Charge(cat instr.Category, n int64)
	// ChargeCycles records n non-instruction cycles (transport,
	// compute).
	ChargeCycles(cat instr.Category, n int64)
	// Now returns the rank's current virtual time.
	Now() vtime.Time
	// Sync advances the rank's clock to t if t is in the future.
	Sync(t vtime.Time)
	// Metrics returns the rank's observability registry. Send-side
	// counters accrue through the calling endpoint's meter;
	// receive-side counters accrue through the destination endpoint's
	// meter under that endpoint's lock.
	Metrics() *metrics.Rank
}

// Fabric is one simulated network connecting n endpoints (one per
// rank). It owns the RDMA memory-region registry.
type Fabric struct {
	prof    Profile
	eps     []*Endpoint
	aborted abort.Flag

	regMu   sync.RWMutex
	regions map[regionKey]*region
	nextKey int
}

type regionKey struct {
	rank int
	key  int
}

// New creates a fabric with n endpoints using the given cost profile.
func New(prof Profile, n int) *Fabric {
	f := &Fabric{
		prof:    prof,
		eps:     make([]*Endpoint, n),
		regions: make(map[regionKey]*region),
	}
	for i := range f.eps {
		f.eps[i] = newEndpoint(f, i)
	}
	return f
}

// Profile returns the fabric's cost profile.
func (f *Fabric) Profile() Profile { return f.prof }

// Size returns the number of endpoints.
func (f *Fabric) Size() int { return len(f.eps) }

// Abort marks the fabric dead and wakes every endpoint: blocked waits
// panic with abort.ErrWorldAborted, which the rank runtime converts to
// errors. Called when any rank fails, so the original error surfaces
// instead of a hang.
func (f *Fabric) Abort() {
	f.aborted.Raise()
	for _, ep := range f.eps {
		ep.Wake()
	}
}

// Aborted reports whether Abort was called.
func (f *Fabric) Aborted() bool { return f.aborted.Raised() }

// Endpoint returns rank's endpoint.
func (f *Fabric) Endpoint(rank int) *Endpoint {
	if rank < 0 || rank >= len(f.eps) {
		panic(fmt.Sprintf("fabric: endpoint %d out of range [0,%d)", rank, len(f.eps)))
	}
	return f.eps[rank]
}
