package fabric

import (
	"sync"
	"sync/atomic"

	"gompi/internal/instr"
	"gompi/internal/vtime"
)

// region is a registered RDMA-accessible memory region. Puts and gets
// access mem directly (all ranks share the address space); maxArrival
// tracks the latest virtual arrival of any remote write, which epoch
// synchronization (fence, unlock) folds into the target's clock.
type region struct {
	mem        []byte
	maxArrival atomic.Int64
	rmwMu      sync.Mutex // serializes read-modify-write (accumulate) ops
}

// RegisterRegion exposes mem for RDMA from any endpoint and returns the
// region key remote ranks use to address it (the rkey of a real NIC).
// Window creation exchanges these keys.
func (f *Fabric) RegisterRegion(rank int, mem []byte) int {
	f.regMu.Lock()
	defer f.regMu.Unlock()
	f.nextKey++
	f.regions[regionKey{rank, f.nextKey}] = &region{mem: mem}
	return f.nextKey
}

// UnregisterRegion revokes a region.
func (f *Fabric) UnregisterRegion(rank, key int) {
	f.regMu.Lock()
	defer f.regMu.Unlock()
	delete(f.regions, regionKey{rank, key})
}

func (f *Fabric) region(rank, key int) *region {
	f.regMu.RLock()
	r := f.regions[regionKey{rank, key}]
	f.regMu.RUnlock()
	if r == nil {
		panic("fabric: RDMA to unregistered region")
	}
	return r
}

// noteArrival folds a write's virtual arrival time into the region's
// high-water mark.
func (r *region) noteArrival(t vtime.Time) {
	for {
		cur := r.maxArrival.Load()
		if int64(t) <= cur || r.maxArrival.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// Put writes data into (dst, key) at byte offset off: a one-sided RDMA
// write with no software on the target. Local completion is at
// injection (the data is placed immediately; its virtual arrival is
// recorded on the region).
func (ep *Endpoint) Put(dst, key, off int, data []byte) {
	p := &ep.f.prof
	ep.meter.ChargeCycles(instr.Transport, p.injectCost(p.PutInject, len(data)))
	arrival := p.arrival(ep.meter.Now(), len(data))

	r := ep.f.region(dst, key)
	copy(r.mem[off:], data)
	r.noteArrival(arrival)
}

// Get reads len(buf) bytes from (dst, key) at offset off into buf: a
// one-sided RDMA read. The origin's clock advances by the round trip.
func (ep *Endpoint) Get(dst, key, off int, buf []byte) {
	p := &ep.f.prof
	ep.meter.ChargeCycles(instr.Transport, p.injectCost(p.GetInject, 0))

	r := ep.f.region(dst, key)
	copy(buf, r.mem[off:off+len(buf)])
	// Round trip: request out, data back.
	ep.meter.Sync(p.arrival(p.arrival(ep.meter.Now(), 0), len(buf)))
}

// RMW applies fn to the target bytes under the region's atomicity lock:
// the substrate for MPI_ACCUMULATE, MPI_FETCH_AND_OP and
// MPI_COMPARE_AND_SWAP, which real NICs execute atomically per element.
// fn receives the target slice; any prior contents it reads are
// current. The origin pays a round trip (fetching semantics) plus the
// payload injection.
func (ep *Endpoint) RMW(dst, key, off, n int, fn func(target []byte)) {
	p := &ep.f.prof
	ep.meter.ChargeCycles(instr.Transport, p.injectCost(p.PutInject, n))
	arrival := p.arrival(ep.meter.Now(), n)

	r := ep.f.region(dst, key)
	r.rmwMu.Lock()
	fn(r.mem[off : off+n])
	r.rmwMu.Unlock()
	r.noteArrival(arrival)
	ep.meter.Sync(p.arrival(arrival, 0)) // completion ack round trip
}

// PutLocal deposits data into (dst, key) by direct store — the
// zero-copy path for shm-backed windows: ranks on one node share the
// address space, so an intra-node Put is a memcpy into the window, not
// an injection. The caller has already charged the copy's cycles;
// arrival is the store's virtual completion time, recorded on the
// region so epoch-closing synchronization folds it in like any RDMA
// write.
func (f *Fabric) PutLocal(dst, key, off int, data []byte, arrival vtime.Time) {
	r := f.region(dst, key)
	copy(r.mem[off:], data)
	r.noteArrival(arrival)
}

// GetLocal reads len(buf) bytes from (dst, key) at offset off by
// direct load — the zero-copy intra-node Get. No round trip: the
// caller charges the copy and the data is immediately current.
func (f *Fabric) GetLocal(dst, key, off int, buf []byte) {
	r := f.region(dst, key)
	copy(buf, r.mem[off:off+len(buf)])
}

// RMWLocal applies fn to the target bytes under the region's atomicity
// lock without any wire charges — the intra-node lent-view fold: the
// origin mutates the target's bytes where they lie (zero staged, zero
// direct copies). fn sees current contents; arrival records the fold's
// virtual completion on the region.
func (f *Fabric) RMWLocal(dst, key, off, n int, fn func(target []byte), arrival vtime.Time) {
	r := f.region(dst, key)
	r.rmwMu.Lock()
	fn(r.mem[off : off+n])
	r.rmwMu.Unlock()
	r.noteArrival(arrival)
}

// RegionMem exposes the raw memory of a locally registered region to
// device-side active-message handlers (the target of an AM fallback
// scatters into its own window memory).
func (f *Fabric) RegionMem(rank, key int) []byte {
	return f.region(rank, key).mem
}

// RegionArrival returns the latest virtual arrival of any remote write
// to (rank, key). Epoch-closing synchronization calls this on the
// target side so the target's clock reflects the data it is about to
// read.
func (f *Fabric) RegionArrival(rank, key int) vtime.Time {
	return vtime.Time(f.region(rank, key).maxArrival.Load())
}
