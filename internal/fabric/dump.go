package fabric

import (
	"fmt"
	"io"
	"sync/atomic"

	"gompi/internal/match"
)

// WriteWaitGraph renders the fabric's matching state for deadlock
// diagnosis: every endpoint's unmatched posted receives, buffered
// unexpected messages, queued active messages, and the who-waits-on-whom
// edges implied by posted receives with a concrete source. Each VCI lock
// is taken one at a time, so the dump is safe while ranks are parked
// (parked waiters hold no VCI lock inside cond.Wait).
func (f *Fabric) WriteWaitGraph(w io.Writer) {
	fmt.Fprintf(w, "wait-graph: %d rank(s), %d vci(s) each\n", len(f.eps), f.nvci)
	type edge struct{ from, to int }
	var edges []edge
	for _, ep := range f.eps {
		posted, unex := 0, 0
		var lines []string
		for v, s := range ep.vcis {
			s.mu.Lock()
			posted += s.eng.PostedLen()
			unex += s.eng.UnexpectedLen()
			s.eng.PostedEach(func(e match.Entry) {
				lines = append(lines, fmt.Sprintf("  posted recv vci=%d %s", v, e.DescribeRecv()))
				if !e.Mask.SourceWild() {
					edges = append(edges, edge{ep.rank, e.Bits.Source()})
				}
			})
			s.eng.UnexpectedEach(func(e match.Entry) {
				lines = append(lines, fmt.Sprintf("  unexpected vci=%d %s", v, e.Bits.String()))
			})
			s.mu.Unlock()
		}
		amq := atomic.LoadInt32(&ep.amqLen)
		fmt.Fprintf(w, "rank %d: %d posted, %d unexpected, %d queued AM\n", ep.rank, posted, unex, amq)
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
	}
	if len(edges) > 0 {
		fmt.Fprintln(w, "waits-on edges (posted receive -> named source):")
		for _, e := range edges {
			fmt.Fprintf(w, "  rank %d waits on rank %d\n", e.from, e.to)
		}
	}
}
