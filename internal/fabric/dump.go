package fabric

import (
	"fmt"
	"io"
	"sync/atomic"

	"gompi/internal/match"
)

// WriteWaitGraph renders the fabric's matching state for deadlock
// diagnosis: every endpoint's unmatched posted receives, buffered
// unexpected messages, queued active messages, and the who-waits-on-whom
// edges implied by posted receives with a concrete source. Each VCI lock
// is taken one at a time, so the dump is safe while ranks are parked
// (parked waiters hold no VCI lock inside cond.Wait).
func (f *Fabric) WriteWaitGraph(w io.Writer) {
	fmt.Fprintf(w, "wait-graph: %d rank(s), %d vci(s) each\n", len(f.eps), f.nvci)
	type edge struct {
		from, to int
		class    string
	}
	var edges []edge
	lazy := 0
	for i := range f.eps {
		// Never-materialized endpoints have no queues and no waiters;
		// summarize them in one line instead of dumping (or worse,
		// materializing) each. Materialized lazy peers appear exactly
		// like eager ones below.
		ep := f.peek(i)
		if ep == nil {
			lazy++
			continue
		}
		posted, unex := 0, 0
		var lines []string
		for v, s := range ep.vcis {
			s.mu.Lock()
			posted += s.eng.PostedLen()
			unex += s.eng.UnexpectedLen()
			s.eng.PostedEach(func(e match.Entry) {
				// Classify the reserved tag ranges so a stuck partitioned
				// chunk or persistent-collective schedule names itself in
				// the dump.
				class := ""
				if !e.Mask.TagWild() {
					class = match.TagClass(e.Bits.Tag())
				}
				l := fmt.Sprintf("  posted recv vci=%d %s", v, e.DescribeRecv())
				if class != "" {
					l += " [" + class + "]"
				}
				lines = append(lines, l)
				if !e.Mask.SourceWild() {
					edges = append(edges, edge{ep.rank, e.Bits.Source(), class})
				}
			})
			s.eng.UnexpectedEach(func(e match.Entry) {
				lines = append(lines, fmt.Sprintf("  unexpected vci=%d %s", v, e.Bits.String()))
			})
			s.mu.Unlock()
		}
		amq := atomic.LoadInt32(&ep.amqLen)
		fmt.Fprintf(w, "rank %d: %d posted, %d unexpected, %d queued AM, %d conns\n", ep.rank, posted, unex, amq, ep.Conns())
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
	}
	if lazy > 0 {
		fmt.Fprintf(w, "%d endpoint(s) never materialized (lazy)\n", lazy)
	}
	if len(edges) > 0 {
		fmt.Fprintln(w, "waits-on edges (posted receive -> named source):")
		for _, e := range edges {
			if e.class != "" {
				fmt.Fprintf(w, "  rank %d waits on rank %d [%s]\n", e.from, e.to, e.class)
			} else {
				fmt.Fprintf(w, "  rank %d waits on rank %d\n", e.from, e.to)
			}
		}
	}
}
