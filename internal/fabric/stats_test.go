package fabric

import (
	"sync"
	"sync/atomic"
	"testing"

	"gompi/internal/match"
	"gompi/internal/vtime"
)

// TestSnapshotDuringDeposits races mid-run snapshots against peers
// depositing tagged messages and active messages. Receive-side
// counters are written under the endpoint lock by the senders'
// goroutines, so the snapshot must take the same lock — an unlocked
// registry copy here trips the race detector and can read torn
// values.
func TestSnapshotDuringDeposits(t *testing.T) {
	const senders, msgs = 3, 500
	f := New(INF, senders+1)
	ms := make([]*testMeter, senders+1)
	for i := range ms {
		ms[i] = newTestMeter(1e9)
		f.Endpoint(i).Bind(ms[i])
	}
	f.Endpoint(0).RegisterAM(9, func(int, []byte, []byte, vtime.Time) {})

	var wg sync.WaitGroup
	start := make(chan struct{})
	sending := int32(senders)
	for s := 1; s <= senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			defer atomic.AddInt32(&sending, -1)
			<-start
			for i := 0; i < msgs; i++ {
				f.Endpoint(s).TaggedSend(0, match.MakeBits(1, s, i), []byte{byte(s)})
				f.Endpoint(s).AMSend(0, 9, []byte{1}, nil)
			}
		}(s)
	}

	// The receiver snapshots as long as deposits are landing (the
	// Proc.Metrics mid-run path): receive-side counters mutate under
	// the endpoint lock on the senders' goroutines the whole time.
	close(start)
	for atomic.LoadInt32(&sending) > 0 {
		_ = f.Endpoint(0).FoldAndSnapshot()
		_ = f.Endpoint(0).SnapshotStats()
	}
	wg.Wait()
	f.Endpoint(0).Progress()

	snap := f.Endpoint(0).FoldAndSnapshot()
	if snap.NetRecv.Msgs != senders*msgs {
		t.Fatalf("NetRecv.Msgs = %d, want %d", snap.NetRecv.Msgs, senders*msgs)
	}
	if snap.AmRecv.Msgs != senders*msgs {
		t.Fatalf("AmRecv.Msgs = %d, want %d", snap.AmRecv.Msgs, senders*msgs)
	}
}

// TestAmRecvCountsAtDelivery pins the attribution point of AmRecv: a
// queued-but-undrained active message is not yet "received", so a
// snapshot taken before Progress must not count it.
func TestAmRecvCountsAtDelivery(t *testing.T) {
	f, _ := newTestFabric(t, OFI, 2)
	f.Endpoint(1).RegisterAM(7, func(int, []byte, []byte, vtime.Time) {})
	f.Endpoint(0).AMSend(1, 7, []byte{0xAB}, []byte("data"))

	before := f.Endpoint(1).SnapshotStats()
	if before.AmRecv.Msgs != 0 {
		t.Fatalf("AmRecv counted at enqueue: %+v", before.AmRecv)
	}
	if n := f.Endpoint(1).Progress(); n != 1 {
		t.Fatalf("Progress handled %d messages, want 1", n)
	}
	after := f.Endpoint(1).SnapshotStats()
	if after.AmRecv.Msgs != 1 || after.AmRecv.Bytes != 5 {
		t.Fatalf("AmRecv after delivery = %+v, want {1 5}", after.AmRecv)
	}
}
