package fabric

import "gompi/internal/metrics"

// Size-classed payload buffer pool. Every eager message that cannot
// complete immediately needs a stable copy of its payload while it sits
// on the unexpected queue; recycling those copies keeps the
// steady-state eager path allocation-free. The pool is per endpoint and
// guarded by the endpoint lock, so no atomics are paid beyond the lock
// the deposit already takes.

// poolClasses are the rounded-up buffer capacities kept, sized for the
// workloads the figures run: tiny latency-test payloads, cache-line
// packets, one page, and the eager limit.
var poolClasses = [...]int{64, 512, 4096, 65536}

// The metrics package sizes its per-class hit/miss arrays to match.
var _ [metrics.NumPoolClasses]int64 = [len(poolClasses)]int64{}

// bufPool holds free buffers by class. Buffers are allocated at exactly
// the class capacity so put can recognize them by cap alone; anything
// larger than the top class is not pooled.
type bufPool struct {
	classes [len(poolClasses)][][]byte
}

// get returns a length-n buffer, recycled when a fit is free, counting
// the hit or miss on m.
func (p *bufPool) get(n int, m *metrics.Rank) []byte {
	if n == 0 {
		return nil
	}
	for i, c := range poolClasses {
		if n <= c {
			s := p.classes[i]
			if len(s) == 0 {
				m.NotePoolMiss(i)
				return make([]byte, n, c)
			}
			m.NotePoolHit(i)
			b := s[len(s)-1]
			p.classes[i] = s[:len(s)-1]
			return b[:n]
		}
	}
	m.NotePoolOversize()
	return make([]byte, n)
}

// put recycles a buffer handed out by get. Oversized (unpooled) and
// foreign buffers are dropped for the GC.
func (p *bufPool) put(b []byte) {
	for i, c := range poolClasses {
		if cap(b) == c {
			p.classes[i] = append(p.classes[i], b[:0])
			return
		}
	}
}
