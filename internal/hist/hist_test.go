package hist

import (
	"math/rand"
	"sync"
	"testing"
)

func TestEmptyHistogram(t *testing.T) {
	var h H
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not zero: count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	for _, p := range []float64{0, 50, 90, 99, 100} {
		if got := h.Percentile(p); got != 0 {
			t.Fatalf("empty histogram p%g = %d, want 0", p, got)
		}
	}
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.P99 != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	if s.Mean() != 0 {
		t.Fatalf("empty snapshot mean = %g, want 0", s.Mean())
	}
}

func TestPercentileOrdering(t *testing.T) {
	var h H
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		h.Observe(rng.Int63n(1 << 20))
	}
	p50, p90, p99, max := h.Percentile(50), h.Percentile(90), h.Percentile(99), h.Max()
	if !(p50 <= p90 && p90 <= p99 && p99 <= max) {
		t.Fatalf("percentile ordering violated: p50=%d p90=%d p99=%d max=%d", p50, p90, p99, max)
	}
	if h.Count() != 5000 {
		t.Fatalf("count = %d, want 5000", h.Count())
	}
}

func TestSingleValue(t *testing.T) {
	var h H
	h.Observe(100)
	// 100 lands in bucket ceil(log2(100)) = 7, upper bound 128,
	// clamped to max=100.
	for _, p := range []float64{1, 50, 99, 100} {
		if got := h.Percentile(p); got != 100 {
			t.Fatalf("p%g = %d, want 100 (single observation clamped to max)", p, got)
		}
	}
	if h.Sum() != 100 || h.Max() != 100 || h.Count() != 1 {
		t.Fatalf("sum/max/count = %d/%d/%d", h.Sum(), h.Max(), h.Count())
	}
}

func TestNegativeClampsToZero(t *testing.T) {
	var h H
	h.Observe(-5)
	if h.Count() != 1 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatalf("negative observation not clamped: count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	if got := h.Percentile(50); got != 0 {
		t.Fatalf("p50 after clamped observation = %d, want 0", got)
	}
}

// TestMergeShardsEqualsWhole: observing a stream into K shards and
// merging must reproduce the histogram of the whole stream exactly.
func TestMergeShardsEqualsWhole(t *testing.T) {
	const shards = 4
	var whole H
	var parts [shards]H
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 8000; i++ {
		v := rng.Int63n(1 << 30)
		whole.Observe(v)
		parts[i%shards].Observe(v)
	}
	var merged H
	for i := range parts {
		merged.Merge(&parts[i])
	}
	ws, ms := whole.Snapshot(), merged.Snapshot()
	if ws != ms {
		t.Fatalf("merged shards != whole:\nwhole  %+v\nmerged %+v", ws, ms)
	}

	// Snapshot-level merge must agree too.
	var sm Snapshot
	for i := range parts {
		sm.Merge(parts[i].Snapshot())
	}
	if sm != ws {
		t.Fatalf("snapshot merge != whole:\nwhole %+v\nsnap  %+v", ws, sm)
	}
}

func TestConcurrentObserve(t *testing.T) {
	var h H
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(1 << 16))
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	var bsum int64
	s := h.Snapshot()
	for _, b := range s.Buckets {
		bsum += b
	}
	if bsum != h.Count() {
		t.Fatalf("bucket sum %d != count %d", bsum, h.Count())
	}
}

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {(1 << 20) + 1, 21},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestObserveAllocFree(t *testing.T) {
	var h H
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates: %g allocs/op", allocs)
	}
}
