// Package hist provides allocation-free, mergeable log2-bucketed
// histograms over virtual cycles.
//
// H is a fixed-size value type: embedding it in a per-rank metrics
// registry costs no allocation, and every mutation is a single atomic
// add or CAS, so peer goroutines (a sender depositing into the
// receiver's endpoint) can record observations into another rank's
// histogram without holding that rank's locks. This mirrors the
// "atomic throughout" contract of internal/metrics.
//
// Buckets are powers of two: bucket i counts observations v with
// 2^(i-1) < v <= 2^i (bucket 0 counts v <= 1, which includes zero).
// Percentile estimates return the upper bound of the bucket holding
// the requested quantile, so they are conservative (never under-report
// latency) and exact for the common small-value cases.
package hist

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets covers the full non-negative int64 range: bucket 63
// holds everything above 2^62.
const NumBuckets = 64

// H is a log2-bucketed histogram. The zero value is an empty
// histogram ready for use. All methods are safe for concurrent use.
type H struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	// bits.Len64(v-1) is ceil(log2(v)) for v >= 2.
	b := bits.Len64(uint64(v - 1))
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// Observe records one value. Negative values are clamped to zero:
// span observations are differences of virtual clocks that can only
// run backwards through benign races, and a clamped zero keeps the
// count honest without poisoning the distribution.
func (h *H) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *H) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *H) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value (zero when empty).
func (h *H) Max() int64 { return h.max.Load() }

// Percentile returns a conservative estimate of the p-th percentile
// (0 < p <= 100): the upper bound of the bucket containing that
// quantile, clamped to Max. An empty histogram reports zero.
func (h *H) Percentile(p float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	// Rank of the target observation, 1-based, rounding up.
	target := int64(float64(n)*p/100 + 0.9999999)
	if target < 1 {
		target = 1
	}
	if target > n {
		target = n
	}
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			ub := bucketUpper(i)
			if m := h.max.Load(); ub > m {
				ub = m
			}
			return ub
		}
	}
	return h.max.Load()
}

// bucketUpper is the inclusive upper bound of bucket i.
func bucketUpper(i int) int64 {
	if i >= 63 {
		return int64(^uint64(0) >> 1) // MaxInt64
	}
	return int64(1) << uint(i)
}

// Merge adds o's observations into h. o is read with atomic loads, so
// merging a live histogram yields a coherent-enough snapshot (each
// field individually consistent), and merging quiesced shards is exact.
func (h *H) Merge(o *H) {
	for i := 0; i < NumBuckets; i++ {
		if v := o.buckets[i].Load(); v != 0 {
			h.buckets[i].Add(v)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			break
		}
	}
}

// Snapshot is a plain-value copy of a histogram with derived
// percentiles, suitable for JSON export and cross-rank aggregation.
type Snapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`

	Buckets [NumBuckets]int64 `json:"-"`
}

// Snapshot captures the histogram's current state.
func (h *H) Snapshot() Snapshot {
	s := Snapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
	}
	for i := 0; i < NumBuckets; i++ {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Merge folds o into s, recomputing nothing: percentiles of a merged
// snapshot are derived from the combined buckets via Percentiles.
func (s *Snapshot) Merge(o Snapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := 0; i < NumBuckets; i++ {
		s.Buckets[i] += o.Buckets[i]
	}
	s.P50, s.P90, s.P99 = s.percentile(50), s.percentile(90), s.percentile(99)
}

// percentile recomputes a percentile from the snapshot's buckets.
func (s *Snapshot) percentile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(float64(s.Count)*p/100 + 0.9999999)
	if target < 1 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		cum += s.Buckets[i]
		if cum >= target {
			ub := bucketUpper(i)
			if ub > s.Max {
				ub = s.Max
			}
			return ub
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the snapshot (zero when empty).
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
