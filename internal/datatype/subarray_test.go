package datatype

import (
	"bytes"
	"testing"
)

func TestSubarray2D(t *testing.T) {
	// 4x4 byte array; select the 2x2 box at (1,1).
	sa, err := NewSubarray([]int{4, 4}, []int{2, 2}, []int{1, 1}, Byte)
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.Commit(); err != nil {
		t.Fatal(err)
	}
	if sa.Size() != 4 || sa.Extent() != 16 {
		t.Fatalf("size/extent = %d/%d, want 4/16", sa.Size(), sa.Extent())
	}
	src := make([]byte, 16)
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]byte, 4)
	if _, err := Pack(sa, 1, src, dst); err != nil {
		t.Fatal(err)
	}
	// Row-major 4x4: box (1,1)..(2,2) = elements 5,6,9,10.
	if !bytes.Equal(dst, []byte{5, 6, 9, 10}) {
		t.Fatalf("packed %v", dst)
	}
}

func TestSubarray3D(t *testing.T) {
	// 2x3x4 array of ints, select 1x2x2 at (1,0,2).
	sa, err := NewSubarray([]int{2, 3, 4}, []int{1, 2, 2}, []int{1, 0, 2}, Int)
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.Commit(); err != nil {
		t.Fatal(err)
	}
	if sa.Size() != 4*4 || sa.Extent() != 24*4 {
		t.Fatalf("size/extent = %d/%d", sa.Size(), sa.Extent())
	}
	// Element offsets: plane 1 (=12 elements in), rows 0..1, cols 2..3:
	// 12+0*4+2=14,15 and 12+4+2=18,19.
	segs := sa.Segments()
	if len(segs) != 2 || segs[0] != (Segment{14 * 4, 8}) || segs[1] != (Segment{18 * 4, 8}) {
		t.Fatalf("segments %v", segs)
	}
}

func TestSubarray1D(t *testing.T) {
	sa, err := NewSubarray([]int{10}, []int{3}, []int{4}, Byte)
	if err != nil {
		t.Fatal(err)
	}
	sa.Commit()
	segs := sa.Segments()
	if len(segs) != 1 || segs[0] != (Segment{4, 3}) {
		t.Fatalf("segments %v", segs)
	}
}

func TestSubarrayValidation(t *testing.T) {
	if _, err := NewSubarray([]int{4}, []int{5}, []int{0}, Byte); err == nil {
		t.Error("oversized subsize accepted")
	}
	if _, err := NewSubarray([]int{4}, []int{2}, []int{3}, Byte); err == nil {
		t.Error("overhanging start accepted")
	}
	if _, err := NewSubarray([]int{4}, []int{2}, []int{0, 0}, Byte); err == nil {
		t.Error("mismatched dims accepted")
	}
	if _, err := NewSubarray(nil, nil, nil, Byte); err == nil {
		t.Error("empty dims accepted")
	}
}

func TestSubarrayMultipleCount(t *testing.T) {
	// count=2 walks two consecutive full arrays.
	sa, _ := NewSubarray([]int{2, 2}, []int{1, 1}, []int{0, 1}, Byte)
	sa.Commit()
	src := []byte{0, 1, 2, 3, 10, 11, 12, 13}
	dst := make([]byte, 2)
	if _, err := Pack(sa, 2, src, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, []byte{1, 11}) {
		t.Fatalf("packed %v", dst)
	}
}

func TestResizedExtent(t *testing.T) {
	// A 2-byte type padded to stride 5 for interleaving.
	rz, err := NewResized(Short, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := rz.Commit(); err != nil {
		t.Fatal(err)
	}
	if rz.Size() != 2 || rz.Extent() != 5 {
		t.Fatalf("size/extent = %d/%d", rz.Size(), rz.Extent())
	}
	if rz.Contig() {
		t.Error("padded resized type classified contiguous")
	}
	src := []byte{1, 2, 0, 0, 0, 3, 4, 0, 0, 0}
	dst := make([]byte, 4)
	if _, err := Pack(rz, 2, src, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, []byte{1, 2, 3, 4}) {
		t.Fatalf("packed %v", dst)
	}
}

func TestResizedValidation(t *testing.T) {
	if _, err := NewResized(Double, 4); err == nil {
		t.Error("extent below data span accepted")
	}
	if _, err := NewResized(nil, 8); err == nil {
		t.Error("nil base accepted")
	}
}

func TestDupIndependence(t *testing.T) {
	v, _ := NewVector(2, 1, 2, Int)
	d := v.Dup()
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if v.Committed() {
		t.Error("committing the dup committed the original")
	}
	if err := v.Commit(); err != nil {
		t.Fatal(err)
	}
	if d.Size() != v.Size() || d.Extent() != v.Extent() {
		t.Error("dup differs from original")
	}
	if len(d.Segments()) != len(v.Segments()) {
		t.Error("dup segments differ")
	}
}

func TestSubarrayBaseElem(t *testing.T) {
	sa, _ := NewSubarray([]int{4}, []int{2}, []int{1}, Double)
	if sa.BaseElem() != Double {
		t.Error("subarray BaseElem wrong")
	}
	rz, _ := NewResized(Int, 8)
	if rz.BaseElem() != Int {
		t.Error("resized BaseElem wrong")
	}
}
