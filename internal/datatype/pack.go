package datatype

import "fmt"

// PackedSize returns the wire size of count elements of t.
func PackedSize(t *Type, count int) int { return count * t.size }

// Pack serializes count elements of type t from src into dst, which
// must have at least PackedSize bytes. It returns the number of bytes
// written. src must cover count*Extent bytes (the last element's
// trailing gap may be absent, per MPI convention, as long as its data
// segments are present).
func Pack(t *Type, count int, src, dst []byte) (int, error) {
	if !t.committed {
		return 0, ErrUncommitted
	}
	n := 0
	for k := 0; k < count; k++ {
		base := k * t.extent
		for _, s := range t.segs {
			if n+s.Len > len(dst) || base+s.Off+s.Len > len(src) {
				return n, fmt.Errorf("datatype: pack overflow at element %d", k)
			}
			n += copy(dst[n:n+s.Len], src[base+s.Off:base+s.Off+s.Len])
		}
	}
	return n, nil
}

// Unpack deserializes count elements of type t from the packed src into
// the laid-out dst. It returns the number of bytes consumed.
func Unpack(t *Type, count int, src, dst []byte) (int, error) {
	if !t.committed {
		return 0, ErrUncommitted
	}
	n := 0
	for k := 0; k < count; k++ {
		base := k * t.extent
		for _, s := range t.segs {
			if n+s.Len > len(src) || base+s.Off+s.Len > len(dst) {
				return n, fmt.Errorf("datatype: unpack overflow at element %d", k)
			}
			n += copy(dst[base+s.Off:base+s.Off+s.Len], src[n:n+s.Len])
		}
	}
	return n, nil
}

// ContigView returns the raw bytes of count contiguous elements of t in
// buf without copying, or ok=false if the type is not contiguous (the
// caller must Pack). This is the communication fast path.
func ContigView(t *Type, count int, buf []byte) (view []byte, ok bool) {
	if !t.contig {
		return nil, false
	}
	n := count * t.size
	if n > len(buf) {
		return nil, false
	}
	return buf[:n], true
}
