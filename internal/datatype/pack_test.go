package datatype

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// mustCommit returns a helper that commits a freshly constructed type,
// failing the test on any error: ct := mustCommit(t)(NewVector(...)).
func mustCommit(t *testing.T) func(*Type, error) *Type {
	return func(ty *Type, err error) *Type {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if err := ty.Commit(); err != nil {
			t.Fatal(err)
		}
		return ty
	}
}

func TestPackContiguous(t *testing.T) {
	ct := mustCommit(t)(NewContiguous(3, Int))
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	dst := make([]byte, 12)
	n, err := Pack(ct, 1, src, dst)
	if err != nil || n != 12 {
		t.Fatalf("Pack = (%d,%v)", n, err)
	}
	if !bytes.Equal(dst, src) {
		t.Error("contiguous pack changed bytes")
	}
}

func TestPackVectorSelectsStridedBytes(t *testing.T) {
	v := mustCommit(t)(NewVector(2, 1, 2, Byte)) // bytes 0 and 2
	src := []byte{'a', 'b', 'c', 'd'}
	dst := make([]byte, 2)
	n, err := Pack(v, 1, src, dst)
	if err != nil || n != 2 {
		t.Fatalf("Pack = (%d,%v)", n, err)
	}
	if string(dst) != "ac" {
		t.Errorf("packed %q, want \"ac\"", dst)
	}
}

func TestUnpackVector(t *testing.T) {
	v := mustCommit(t)(NewVector(2, 1, 2, Byte))
	dst := []byte{'x', 'x', 'x', 'x'}
	if _, err := Unpack(v, 1, []byte{'A', 'C'}, dst); err != nil {
		t.Fatal(err)
	}
	if string(dst) != "AxCx" {
		t.Errorf("unpacked %q, want \"AxCx\"", dst)
	}
}

func TestPackMultipleElements(t *testing.T) {
	v := mustCommit(t)(NewVector(2, 1, 2, Byte)) // extent 3, size 2
	// Two elements: bytes {0,2} and {3,5}.
	src := []byte{'a', 'b', 'c', 'd', 'e', 'f'}
	dst := make([]byte, 4)
	n, err := Pack(v, 2, src, dst)
	if err != nil || n != 4 {
		t.Fatalf("Pack = (%d,%v)", n, err)
	}
	if string(dst) != "acdf" {
		t.Errorf("packed %q, want \"acdf\"", dst)
	}
}

func TestPackUncommitted(t *testing.T) {
	v, _ := NewVector(2, 1, 2, Byte)
	if _, err := Pack(v, 1, make([]byte, 4), make([]byte, 2)); err != ErrUncommitted {
		t.Fatalf("err = %v, want ErrUncommitted", err)
	}
	if _, err := Unpack(v, 1, make([]byte, 2), make([]byte, 4)); err != ErrUncommitted {
		t.Fatalf("err = %v, want ErrUncommitted", err)
	}
}

func TestPackOverflowDetected(t *testing.T) {
	ct := mustCommit(t)(NewContiguous(4, Byte))
	if _, err := Pack(ct, 1, make([]byte, 4), make([]byte, 2)); err == nil {
		t.Fatal("pack into short dst did not error")
	}
}

func TestContigView(t *testing.T) {
	buf := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	view, ok := ContigView(Double, 1, buf)
	if !ok || len(view) != 8 || &view[0] != &buf[0] {
		t.Fatal("ContigView on double failed or copied")
	}
	v := mustCommit(t)(NewVector(2, 1, 2, Byte))
	if _, ok := ContigView(v, 1, buf); ok {
		t.Fatal("ContigView succeeded on strided type")
	}
	if _, ok := ContigView(Double, 2, buf[:8]); ok {
		t.Fatal("ContigView succeeded past buffer end")
	}
}

// randomType builds an arbitrary committed type from fuzz bytes,
// bounded in nesting and size.
func randomType(r *rand.Rand, depth int) *Type {
	bases := []*Type{Byte, Short, Int, Long, Float, Double}
	if depth <= 0 {
		return bases[r.Intn(len(bases))]
	}
	switch r.Intn(5) {
	case 0:
		return bases[r.Intn(len(bases))]
	case 1:
		base := randomType(r, depth-1)
		ty, _ := NewContiguous(r.Intn(4)+1, base)
		ty.Commit()
		return ty
	case 2:
		base := randomType(r, depth-1)
		bl := r.Intn(3) + 1
		ty, _ := NewVector(r.Intn(3)+1, bl, bl+r.Intn(3), base)
		ty.Commit()
		return ty
	case 3:
		base := randomType(r, depth-1)
		n := r.Intn(3) + 1
		bls := make([]int, n)
		ds := make([]int, n)
		next := 0
		for i := range bls {
			bls[i] = r.Intn(2) + 1
			ds[i] = next + r.Intn(2)
			next = ds[i] + bls[i]
		}
		ty, _ := NewIndexed(bls, ds, base)
		ty.Commit()
		return ty
	default:
		a, b := randomType(r, depth-1), randomType(r, depth-1)
		// Non-overlapping displacements.
		ty, _ := NewStruct([]int{1, 1}, []int{0, a.Extent() + r.Intn(4)}, []*Type{a, b})
		ty.Commit()
		return ty
	}
}

// Property: pack → unpack restores exactly the selected bytes, for
// arbitrary nested types and counts.
func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(seed int64, countRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		ty := randomType(r, 3)
		count := int(countRaw%3) + 1

		src := make([]byte, count*ty.Extent()+8)
		r.Read(src)
		packed := make([]byte, PackedSize(ty, count))
		n, err := Pack(ty, count, src, packed)
		if err != nil || n != len(packed) {
			return false
		}

		dst := make([]byte, len(src))
		for i := range dst {
			dst[i] = 0xEE // poison: untouched bytes must stay
		}
		if _, err := Unpack(ty, count, packed, dst); err != nil {
			return false
		}
		repacked := make([]byte, len(packed))
		if _, err := Pack(ty, count, dst, repacked); err != nil {
			return false
		}
		return bytes.Equal(packed, repacked)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the flattened segments of any committed type sum to Size,
// stay within Extent, and are in-order non-overlapping.
func TestSegmentInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ty := randomType(r, 3)
		sum, end := 0, 0
		for _, s := range ty.Segments() {
			if s.Len <= 0 || s.Off < end { // overlapping or empty
				// Indexed/struct flatten in definition order; our
				// random generator keeps displacements monotonic, so
				// out-of-order means a bug.
				return false
			}
			sum += s.Len
			end = s.Off + s.Len
		}
		return sum == ty.Size() && end <= ty.Extent()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: PackedSize is linear in count.
func TestPackedSizeLinear(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		r := rand.New(rand.NewSource(seed))
		ty := randomType(r, 2)
		return PackedSize(ty, int(a))+PackedSize(ty, int(b)) == PackedSize(ty, int(a)+int(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
