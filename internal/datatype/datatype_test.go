package datatype

import (
	"testing"
)

func TestPredefinedProperties(t *testing.T) {
	cases := []struct {
		t    *Type
		name string
		size int
	}{
		{Byte, "MPI_BYTE", 1},
		{Char, "MPI_CHAR", 1},
		{Short, "MPI_SHORT", 2},
		{Int, "MPI_INT", 4},
		{Long, "MPI_LONG", 8},
		{Float, "MPI_FLOAT", 4},
		{Double, "MPI_DOUBLE", 8},
	}
	for _, c := range cases {
		if c.t.Name() != c.name || c.t.Size() != c.size || c.t.Extent() != c.size {
			t.Errorf("%s: size/extent = %d/%d", c.name, c.t.Size(), c.t.Extent())
		}
		if !c.t.Committed() || !c.t.Contig() || !c.t.Predefined() {
			t.Errorf("%s: predefined flags wrong", c.name)
		}
	}
}

func TestContiguous(t *testing.T) {
	ct, err := NewContiguous(5, Double)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Committed() {
		t.Fatal("derived type committed before Commit")
	}
	if err := ct.Commit(); err != nil {
		t.Fatal(err)
	}
	if ct.Size() != 40 || ct.Extent() != 40 || !ct.Contig() {
		t.Errorf("contiguous(5,double): size=%d extent=%d contig=%v", ct.Size(), ct.Extent(), ct.Contig())
	}
	if len(ct.Segments()) != 1 {
		t.Errorf("segments not coalesced: %v", ct.Segments())
	}
	if ct.Predefined() {
		t.Error("derived type claims to be predefined")
	}
}

func TestVector(t *testing.T) {
	// 3 blocks of 2 ints, stride 4 ints: |XX..|XX..|XX
	v, err := NewVector(3, 2, 4, Int)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Commit(); err != nil {
		t.Fatal(err)
	}
	if v.Size() != 24 {
		t.Errorf("size = %d, want 24", v.Size())
	}
	if v.Extent() != (2*4+2)*4 { // (count-1)*stride + blocklen elements
		t.Errorf("extent = %d, want 40", v.Extent())
	}
	if v.Contig() {
		t.Error("strided vector classified contiguous")
	}
	want := []Segment{{0, 8}, {64, 8}, {128, 8}}
	segs := v.Segments()
	if len(segs) != 3 {
		t.Fatalf("segments = %v", segs)
	}
	for i, s := range segs {
		if s != (Segment{want[i].Off * 1, want[i].Len}) {
			// want offsets 0,64,128? stride 4 ints = 16 bytes.
			break
		}
	}
	if segs[0] != (Segment{0, 8}) || segs[1] != (Segment{16, 8}) || segs[2] != (Segment{32, 8}) {
		t.Errorf("segments = %v", segs)
	}
}

func TestVectorUnitStrideIsContig(t *testing.T) {
	v, _ := NewVector(4, 3, 3, Double) // stride == blocklen
	if err := v.Commit(); err != nil {
		t.Fatal(err)
	}
	if !v.Contig() {
		t.Error("unit-stride vector should classify contiguous")
	}
	if len(v.Segments()) != 1 {
		t.Errorf("segments = %v, want single run", v.Segments())
	}
}

func TestHvector(t *testing.T) {
	h, err := NewHvector(2, 1, 10, Int)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Commit(); err != nil {
		t.Fatal(err)
	}
	if h.Size() != 8 || h.Extent() != 14 {
		t.Errorf("size/extent = %d/%d, want 8/14", h.Size(), h.Extent())
	}
	segs := h.Segments()
	if len(segs) != 2 || segs[1].Off != 10 {
		t.Errorf("segments = %v", segs)
	}
}

func TestIndexed(t *testing.T) {
	// blocks of 2 ints at displ 0, 1 int at displ 5.
	ix, err := NewIndexed([]int{2, 1}, []int{0, 5}, Int)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Commit(); err != nil {
		t.Fatal(err)
	}
	if ix.Size() != 12 || ix.Extent() != 24 {
		t.Errorf("size/extent = %d/%d, want 12/24", ix.Size(), ix.Extent())
	}
	segs := ix.Segments()
	if len(segs) != 2 || segs[0] != (Segment{0, 8}) || segs[1] != (Segment{20, 4}) {
		t.Errorf("segments = %v", segs)
	}
}

func TestStruct(t *testing.T) {
	// {int32-ish pair at 0, double at 8} like a C struct with padding.
	st, err := NewStruct([]int{1, 1}, []int{0, 8}, []*Type{Int, Double})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if st.Size() != 12 || st.Extent() != 16 {
		t.Errorf("size/extent = %d/%d, want 12/16", st.Size(), st.Extent())
	}
	if st.Contig() {
		t.Error("padded struct classified contiguous")
	}
}

func TestNestedTypes(t *testing.T) {
	inner, _ := NewVector(2, 1, 2, Int) // X.X
	if err := inner.Commit(); err != nil {
		t.Fatal(err)
	}
	outer, err := NewContiguous(3, inner)
	if err != nil {
		t.Fatal(err)
	}
	if err := outer.Commit(); err != nil {
		t.Fatal(err)
	}
	if outer.Size() != 3*8 {
		t.Errorf("nested size = %d, want 24", outer.Size())
	}
}

func TestCommitRequiresCommittedBase(t *testing.T) {
	inner, _ := NewVector(2, 1, 2, Int)
	outer, _ := NewContiguous(2, inner) // inner not committed
	if err := outer.Commit(); err != ErrUncommitted {
		t.Fatalf("Commit with uncommitted base: err = %v, want ErrUncommitted", err)
	}
}

func TestCommitIdempotent(t *testing.T) {
	ct, _ := NewContiguous(2, Int)
	if err := ct.Commit(); err != nil {
		t.Fatal(err)
	}
	segs := ct.Segments()
	if err := ct.Commit(); err != nil {
		t.Fatal(err)
	}
	if &segs[0] != &ct.Segments()[0] {
		t.Error("second Commit rebuilt segments")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewContiguous(-1, Int); err != ErrBadArgument {
		t.Error("negative count accepted")
	}
	if _, err := NewContiguous(1, nil); err != ErrBadArgument {
		t.Error("nil base accepted")
	}
	if _, err := NewVector(-1, 1, 1, Int); err != ErrBadArgument {
		t.Error("negative vector count accepted")
	}
	if _, err := NewIndexed([]int{1}, []int{1, 2}, Int); err != ErrBadArgument {
		t.Error("mismatched indexed arrays accepted")
	}
	if _, err := NewStruct([]int{1}, []int{0}, []*Type{nil}); err != ErrBadArgument {
		t.Error("nil struct member accepted")
	}
	if _, err := NewStruct([]int{1, 1}, []int{0}, []*Type{Int, Int}); err != ErrBadArgument {
		t.Error("mismatched struct arrays accepted")
	}
}

func TestZeroCountTypes(t *testing.T) {
	z, err := NewVector(0, 3, 5, Int)
	if err != nil {
		t.Fatal(err)
	}
	if err := z.Commit(); err != nil {
		t.Fatal(err)
	}
	if z.Size() != 0 || z.Extent() != 0 {
		t.Errorf("zero vector size/extent = %d/%d", z.Size(), z.Extent())
	}
	if !z.Contig() {
		t.Error("empty type should be trivially contiguous")
	}
}
