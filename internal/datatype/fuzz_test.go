package datatype

import (
	"bytes"
	"testing"
)

// FuzzVectorPackUnpack drives the dataloop engine with arbitrary vector
// geometries and data: pack→unpack→pack must be a fixed point and never
// touch bytes outside the type's footprint.
func FuzzVectorPackUnpack(f *testing.F) {
	f.Add(3, 2, 4, []byte("abcdefghijklmnopqrstuvwxyz0123456789"))
	f.Add(1, 1, 1, []byte{0})
	f.Add(0, 5, 7, []byte{})
	f.Fuzz(func(t *testing.T, count, blocklen, stride int, data []byte) {
		count = abs(count) % 8
		blocklen = abs(blocklen) % 8
		stride = blocklen + abs(stride)%8 // non-overlapping
		v, err := NewVector(count, blocklen, stride, Byte)
		if err != nil {
			return
		}
		if err := v.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
		if v.Extent() > len(data) {
			return
		}
		packed := make([]byte, PackedSize(v, 1))
		if _, err := Pack(v, 1, data, packed); err != nil {
			t.Fatalf("pack: %v", err)
		}
		poison := bytes.Repeat([]byte{0xEE}, len(data))
		if _, err := Unpack(v, 1, packed, poison); err != nil {
			t.Fatalf("unpack: %v", err)
		}
		repacked := make([]byte, len(packed))
		if _, err := Pack(v, 1, poison, repacked); err != nil {
			t.Fatalf("repack: %v", err)
		}
		if !bytes.Equal(packed, repacked) {
			t.Fatalf("pack/unpack not a fixed point: %v vs %v", packed, repacked)
		}
		// Bytes outside the segments must stay poisoned.
		seen := make([]bool, len(poison))
		for _, s := range v.Segments() {
			for i := s.Off; i < s.Off+s.Len; i++ {
				seen[i] = true
			}
		}
		for i, p := range poison {
			if !seen[i] && p != 0xEE {
				t.Fatalf("unpack wrote outside the type at %d", i)
			}
		}
	})
}

// FuzzSubarrayBounds: arbitrary subarray geometries must either be
// rejected or produce segments strictly inside the extent.
func FuzzSubarrayBounds(f *testing.F) {
	f.Add(4, 4, 2, 2, 1, 1)
	f.Add(1, 1, 1, 1, 0, 0)
	f.Fuzz(func(t *testing.T, s0, s1, sub0, sub1, st0, st1 int) {
		sizes := []int{abs(s0)%6 + 1, abs(s1)%6 + 1}
		subs := []int{abs(sub0)%6 + 1, abs(sub1)%6 + 1}
		starts := []int{abs(st0) % 6, abs(st1) % 6}
		sa, err := NewSubarray(sizes, subs, starts, Byte)
		if err != nil {
			return // rejected geometries are fine
		}
		if err := sa.Commit(); err != nil {
			t.Fatalf("commit accepted geometry then failed: %v", err)
		}
		sum := 0
		for _, s := range sa.Segments() {
			if s.Off < 0 || s.Off+s.Len > sa.Extent() {
				t.Fatalf("segment %v outside extent %d", s, sa.Extent())
			}
			sum += s.Len
		}
		if sum != sa.Size() {
			t.Fatalf("segments sum %d != size %d", sum, sa.Size())
		}
	})
}

func abs(x int) int {
	if x < 0 {
		if x == -x { // MinInt
			return 0
		}
		return -x
	}
	return x
}
