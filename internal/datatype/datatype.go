// Package datatype implements the MPI derived-datatype engine:
// predefined types, the constructors (contiguous, vector, hvector,
// indexed, struct), commit, and pack/unpack. Committing a type flattens
// its layout into a run of (offset,length) segments — the "dataloop"
// optimization real MPICH performs — and classifies it as contiguous or
// not, which is what the communication fast path branches on. The
// paper's "redundant runtime checks" category is exactly the cost of
// re-deriving Size/contiguity on every call when the compiler cannot
// see that the type is a constant.
package datatype

import (
	"errors"
	"fmt"
)

// Kind discriminates the type constructors.
type Kind uint8

// Type kinds.
const (
	KindPredefined Kind = iota
	KindContiguous
	KindVector
	KindHvector
	KindIndexed
	KindStruct
)

// Segment is one contiguous piece of a flattened datatype, relative to
// the start of the element.
type Segment struct {
	Off int // byte offset within one element extent
	Len int // bytes
}

// Type describes a data layout. Predefined types are committed at
// package init; derived types must be committed before use in
// communication. A committed Type is immutable and safe for concurrent
// use by all ranks.
type Type struct {
	kind          Kind
	name          string
	size          int // bytes of actual data per element
	extent        int // span of one element including gaps
	committed     bool
	contig        bool
	runtimeMapped bool
	segs          []Segment // flattened layout, built at commit

	// Constructor parameters, kept for flattening and introspection.
	count     int
	blocklen  int
	stride    int // in elements (vector) or bytes (hvector)
	base      *Type
	blocklens []int
	displs    []int // element displacements (indexed) or bytes (struct)
	subStarts []int // subarray origin (KindSubarray)
	types     []*Type
}

// Predefined MPI basic datatypes.
var (
	Byte   = predefined("MPI_BYTE", 1)
	Char   = predefined("MPI_CHAR", 1)
	Short  = predefined("MPI_SHORT", 2)
	Int    = predefined("MPI_INT", 4)
	Long   = predefined("MPI_LONG", 8)
	Float  = predefined("MPI_FLOAT", 4)
	Double = predefined("MPI_DOUBLE", 8)
)

func predefined(name string, size int) *Type {
	return &Type{
		kind: KindPredefined, name: name, size: size, extent: size,
		committed: true, contig: true,
		segs: []Segment{{0, size}},
	}
}

// Errors returned by the engine.
var (
	ErrUncommitted = errors.New("datatype: type used before commit")
	ErrBadArgument = errors.New("datatype: bad constructor argument")
)

// Kind returns the constructor kind of the type.
func (t *Type) Kind() Kind { return t.kind }

// Name returns the predefined name or a constructor description.
func (t *Type) Name() string {
	if t.name != "" {
		return t.name
	}
	return fmt.Sprintf("derived(kind=%d,size=%d)", t.kind, t.size)
}

// Size returns the number of bytes of actual data in one element.
func (t *Type) Size() int { return t.size }

// Extent returns the span of one element including gaps.
func (t *Type) Extent() int { return t.extent }

// Committed reports whether the type may be used in communication.
func (t *Type) Committed() bool { return t.committed }

// Contig reports whether the type's data is one gap-free run — the
// classification the communication fast path uses. Only valid after
// commit.
func (t *Type) Contig() bool { return t.contig }

// Predefined reports whether the type is an MPI basic type, usable as a
// compile-time constant by the inlining optimization of Section 2.2.
func (t *Type) Predefined() bool { return t.kind == KindPredefined }

// AsRuntimeMapped returns a copy marked as the paper's "class 3"
// datatype usage (Section 2.2): a predefined type reached through a
// runtime variable (the LULESH/Nekbone/miniFE interlibrary
// type-mapping idiom), which link-time inlining of the MPI calls alone
// cannot fold into a compile-time constant. The devices keep charging
// the redundant datatype checks for such types even in the ipo build —
// only inlining the whole application would remove them.
func (t *Type) AsRuntimeMapped() *Type {
	cp := t.Dup()
	cp.runtimeMapped = true
	return cp
}

// RuntimeMapped reports class-3 usage.
func (t *Type) RuntimeMapped() bool { return t.runtimeMapped }

// Segments returns the flattened one-element layout. Only valid after
// commit. The returned slice must not be modified.
func (t *Type) Segments() []Segment { return t.segs }

// BaseElem returns the single predefined type all of t's data consists
// of, or nil if t mixes element types. Accumulate operations require a
// homogeneous base element.
func (t *Type) BaseElem() *Type {
	switch t.kind {
	case KindPredefined:
		return t
	case KindContiguous, KindVector, KindHvector, KindIndexed, KindSubarray, KindResized:
		return t.base.BaseElem()
	case KindStruct:
		var elem *Type
		for _, m := range t.types {
			b := m.BaseElem()
			if b == nil || (elem != nil && b != elem) {
				return nil
			}
			elem = b
		}
		return elem
	default:
		return nil
	}
}

// NewContiguous builds a type of count consecutive base elements.
func NewContiguous(count int, base *Type) (*Type, error) {
	if count < 0 || base == nil {
		return nil, ErrBadArgument
	}
	return &Type{
		kind: KindContiguous, count: count, base: base,
		size:   count * base.size,
		extent: count * base.extent,
	}, nil
}

// NewVector builds count blocks of blocklen base elements, with the
// start of consecutive blocks stride base-extents apart.
func NewVector(count, blocklen, stride int, base *Type) (*Type, error) {
	if count < 0 || blocklen < 0 || base == nil {
		return nil, ErrBadArgument
	}
	t := &Type{
		kind: KindVector, count: count, blocklen: blocklen, stride: stride, base: base,
		size: count * blocklen * base.size,
	}
	t.extent = vectorExtent(count, blocklen, stride*base.extent, base.extent)
	return t, nil
}

// NewHvector is NewVector with the stride given in bytes.
func NewHvector(count, blocklen, strideBytes int, base *Type) (*Type, error) {
	if count < 0 || blocklen < 0 || base == nil {
		return nil, ErrBadArgument
	}
	t := &Type{
		kind: KindHvector, count: count, blocklen: blocklen, stride: strideBytes, base: base,
		size: count * blocklen * base.size,
	}
	t.extent = vectorExtent(count, blocklen, strideBytes, base.extent)
	return t, nil
}

func vectorExtent(count, blocklen, strideBytes, baseExtent int) int {
	if count == 0 || blocklen == 0 {
		return 0
	}
	// Extent spans from the lowest to the highest touched byte.
	last := (count-1)*strideBytes + blocklen*baseExtent
	if strideBytes < 0 {
		lo := (count - 1) * strideBytes
		return blocklen*baseExtent - lo
	}
	return last
}

// NewIndexed builds len(blocklens) blocks where block i has
// blocklens[i] base elements starting displs[i] base-extents from the
// origin.
func NewIndexed(blocklens, displs []int, base *Type) (*Type, error) {
	if base == nil || len(blocklens) != len(displs) {
		return nil, ErrBadArgument
	}
	size, hi := 0, 0
	for i := range blocklens {
		if blocklens[i] < 0 || displs[i] < 0 {
			return nil, ErrBadArgument
		}
		size += blocklens[i] * base.size
		if end := (displs[i] + blocklens[i]) * base.extent; end > hi {
			hi = end
		}
	}
	return &Type{
		kind: KindIndexed, base: base,
		blocklens: append([]int(nil), blocklens...),
		displs:    append([]int(nil), displs...),
		size:      size, extent: hi,
	}, nil
}

// NewStruct builds a heterogeneous type: block i has blocklens[i]
// elements of types[i] at byte displacement displs[i].
func NewStruct(blocklens, displs []int, types []*Type) (*Type, error) {
	if len(blocklens) != len(displs) || len(blocklens) != len(types) {
		return nil, ErrBadArgument
	}
	size, hi := 0, 0
	for i := range blocklens {
		if blocklens[i] < 0 || displs[i] < 0 || types[i] == nil {
			return nil, ErrBadArgument
		}
		size += blocklens[i] * types[i].size
		if end := displs[i] + blocklens[i]*types[i].extent; end > hi {
			hi = end
		}
	}
	return &Type{
		kind:      KindStruct,
		blocklens: append([]int(nil), blocklens...),
		displs:    append([]int(nil), displs...),
		types:     append([]*Type(nil), types...),
		size:      size, extent: hi,
	}, nil
}

// Commit finalizes the type: flattens the layout, coalesces adjacent
// segments, and classifies contiguity. Commit is idempotent. All base
// types must already be committed.
func (t *Type) Commit() error {
	if t.committed {
		return nil
	}
	segs, err := t.flatten(0)
	if err != nil {
		return err
	}
	t.segs = coalesce(segs)
	t.contig = len(t.segs) == 0 ||
		(len(t.segs) == 1 && t.segs[0].Off == 0 && t.segs[0].Len == t.extent)
	t.committed = true
	return nil
}

// flatten produces the (offset,length) runs of one element, origin at
// base offset off.
func (t *Type) flatten(off int) ([]Segment, error) {
	switch t.kind {
	case KindPredefined:
		return []Segment{{off, t.size}}, nil
	case KindContiguous:
		if !t.base.committed {
			return nil, ErrUncommitted
		}
		return t.base.repeatSelf(off, t.count)
	case KindVector:
		return t.vectorSegs(off, t.stride*t.base.extent)
	case KindHvector:
		return t.vectorSegs(off, t.stride)
	case KindIndexed:
		if !t.base.committed {
			return nil, ErrUncommitted
		}
		var segs []Segment
		for i := range t.blocklens {
			s, err := t.base.repeatSelf(off+t.displs[i]*t.base.extent, t.blocklens[i])
			if err != nil {
				return nil, err
			}
			segs = append(segs, s...)
		}
		return segs, nil
	case KindStruct:
		var segs []Segment
		for i := range t.blocklens {
			if !t.types[i].committed {
				return nil, ErrUncommitted
			}
			s, err := t.types[i].repeatSelf(off+t.displs[i], t.blocklens[i])
			if err != nil {
				return nil, err
			}
			segs = append(segs, s...)
		}
		return segs, nil
	case KindSubarray:
		return t.flattenSubarray(off)
	case KindResized:
		if !t.base.committed {
			return nil, ErrUncommitted
		}
		return t.base.flatten(off)
	default:
		return nil, ErrBadArgument
	}
}

// repeatSelf flattens count consecutive copies of t starting at off.
func (t *Type) repeatSelf(off, count int) ([]Segment, error) {
	var segs []Segment
	for k := 0; k < count; k++ {
		s, err := t.flatten(off + k*t.extent)
		if err != nil {
			return nil, err
		}
		segs = append(segs, s...)
	}
	return segs, nil
}

func (t *Type) vectorSegs(off, strideBytes int) ([]Segment, error) {
	if !t.base.committed {
		return nil, ErrUncommitted
	}
	var segs []Segment
	for k := 0; k < t.count; k++ {
		s, err := t.base.repeatSelf(off+k*strideBytes, t.blocklen)
		if err != nil {
			return nil, err
		}
		segs = append(segs, s...)
	}
	return segs, nil
}

// coalesce merges adjacent segments (sorted input: flatten emits in
// layout order for each constructor, but indexed/struct displacements
// may interleave, so only merge exact adjacency without reordering —
// MPI pack order is definition order, not address order).
func coalesce(segs []Segment) []Segment {
	if len(segs) == 0 {
		return segs
	}
	out := segs[:1]
	for _, s := range segs[1:] {
		last := &out[len(out)-1]
		if last.Off+last.Len == s.Off {
			last.Len += s.Len
		} else {
			out = append(out, s)
		}
	}
	return out
}
