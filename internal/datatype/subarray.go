package datatype

import "fmt"

// Additional constructor kinds.
const (
	// KindSubarray is an n-dimensional subarray of a larger array
	// (MPI_TYPE_CREATE_SUBARRAY, C order).
	KindSubarray Kind = iota + 100
	// KindResized overrides a type's extent
	// (MPI_TYPE_CREATE_RESIZED).
	KindResized
)

// NewSubarray describes the subarray of a C-order (row-major)
// n-dimensional array: sizes are the full array extents per dimension
// in elements, subsizes the selected box, starts its origin. The
// resulting type's extent spans the full array, so count>1 walks
// consecutive full arrays, exactly as MPI specifies.
func NewSubarray(sizes, subsizes, starts []int, base *Type) (*Type, error) {
	nd := len(sizes)
	if base == nil || nd == 0 || len(subsizes) != nd || len(starts) != nd {
		return nil, ErrBadArgument
	}
	size := base.size
	extent := base.extent
	for d := 0; d < nd; d++ {
		if sizes[d] < 1 || subsizes[d] < 1 || starts[d] < 0 || starts[d]+subsizes[d] > sizes[d] {
			return nil, fmt.Errorf("%w: dim %d: size %d subsize %d start %d",
				ErrBadArgument, d, sizes[d], subsizes[d], starts[d])
		}
		size *= subsizes[d]
		extent *= sizes[d]
	}
	t := &Type{
		kind: KindSubarray, base: base,
		size: size, extent: extent,
		// Reuse the generic int-slice fields: blocklens=sizes,
		// displs=subsizes, and keep starts separately via types? Store
		// all three in dedicated order: blocklens=sizes,
		// displs=subsizes, subStarts=starts.
		blocklens: append([]int(nil), sizes...),
		displs:    append([]int(nil), subsizes...),
		subStarts: append([]int(nil), starts...),
	}
	return t, nil
}

// NewResized returns a copy of base whose extent is overridden
// (MPI_TYPE_CREATE_RESIZED with lb=0; nonzero lower bounds are not
// supported by this implementation). The new extent must cover the
// type's data.
func NewResized(base *Type, extent int) (*Type, error) {
	if base == nil || extent < 0 {
		return nil, ErrBadArgument
	}
	hi := 0
	for _, s := range base.segs {
		if end := s.Off + s.Len; end > hi {
			hi = end
		}
	}
	if base.committed && extent < hi {
		return nil, fmt.Errorf("%w: extent %d < data span %d", ErrBadArgument, extent, hi)
	}
	return &Type{
		kind: KindResized, base: base,
		size: base.size, extent: extent,
	}, nil
}

// Dup returns an independent copy of the type (MPI_TYPE_DUP). The copy
// shares no mutable state; committing one does not commit the other.
func (t *Type) Dup() *Type {
	cp := *t
	cp.segs = append([]Segment(nil), t.segs...)
	cp.blocklens = append([]int(nil), t.blocklens...)
	cp.displs = append([]int(nil), t.displs...)
	cp.subStarts = append([]int(nil), t.subStarts...)
	cp.types = append([]*Type(nil), t.types...)
	return &cp
}

// flattenSubarray emits the selected box's runs: the last dimension is
// contiguous (C order), outer dimensions iterate the lattice.
func (t *Type) flattenSubarray(off int) ([]Segment, error) {
	if !t.base.committed {
		return nil, ErrUncommitted
	}
	nd := len(t.blocklens)
	sizes, subsizes, starts := t.blocklens, t.displs, t.subStarts

	// Row-major strides in base extents.
	strides := make([]int, nd)
	strides[nd-1] = 1
	for d := nd - 2; d >= 0; d-- {
		strides[d] = strides[d+1] * sizes[d+1]
	}

	// Iterate all outer-dim index combinations; the innermost run is
	// subsizes[nd-1] consecutive base elements.
	idx := make([]int, nd-1)
	var segs []Segment
	for {
		elemOff := starts[nd-1] * strides[nd-1]
		for d := 0; d < nd-1; d++ {
			elemOff += (starts[d] + idx[d]) * strides[d]
		}
		s, err := t.base.repeatSelf(off+elemOff*t.base.extent, subsizes[nd-1])
		if err != nil {
			return nil, err
		}
		segs = append(segs, s...)

		// Odometer increment over the outer dims.
		d := nd - 2
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < subsizes[d] {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			break
		}
	}
	return segs, nil
}
