package shm

import (
	"bytes"
	"strings"
	"testing"

	"gompi/internal/match"
	"gompi/internal/vtime"
)

// TestConfigDefaults pins the package defaults and the Config override
// plumbing: a zero Config reproduces NewDomain's geometry exactly, and
// overrides land in the rings.
func TestConfigDefaults(t *testing.T) {
	if CellSize != 4096 || RingCells != 64 {
		t.Fatalf("package defaults moved: CellSize=%d RingCells=%d, want 4096/64", CellSize, RingCells)
	}
	d := NewDomainCfg(DefaultProfile, Config{}, 2,
		func(dst int, bits match.Bits, src int, data []byte, arrival vtime.Time, vci int) {}, nil)
	if d.cellSize != CellSize || d.ringCells != RingCells {
		t.Errorf("zero Config: cellSize=%d ringCells=%d, want %d/%d",
			d.cellSize, d.ringCells, CellSize, RingCells)
	}
	if d.eagerMax != 0 {
		t.Errorf("zero Config: eagerMax=%d, want 0 (handoff disabled)", d.eagerMax)
	}
	d = NewDomainCfg(DefaultProfile, Config{CellSize: 1024, RingCells: 8, EagerMax: 2048}, 2,
		func(dst int, bits match.Bits, src int, data []byte, arrival vtime.Time, vci int) {}, nil)
	if d.cellSize != 1024 || d.ringCells != 8 || d.eagerMax != 2048 {
		t.Errorf("override Config not honored: %d/%d/%d", d.cellSize, d.ringCells, d.eagerMax)
	}
	r := d.ring(0, 1)
	if len(r.cells) != 8 || len(r.cells[0].data) != 1024 {
		t.Errorf("ring geometry %d cells x %d bytes, want 8 x 1024", len(r.cells), len(r.cells[0].data))
	}
}

// TestCellSizeAffectsCost pins that larger cells mean fewer fragments
// and fewer charged cycles for the same staged payload — the knob the
// crossover sweep turns.
func TestCellSizeAffectsCost(t *testing.T) {
	cost := func(cellSize int) int64 {
		d := NewDomainCfg(DefaultProfile, Config{CellSize: cellSize}, 2,
			func(dst int, bits match.Bits, src int, data []byte, arrival vtime.Time, vci int) {}, nil)
		meters := []*testMeter{newTestMeter(), newTestMeter()}
		d.Bind(0, meters[0])
		d.Bind(1, meters[1])
		d.Send(0, 1, match.MakeBits(0, 0, 0), make([]byte, 32768))
		d.Progress(1)
		return int64(meters[0].clock.Now()) + int64(meters[1].clock.Now())
	}
	small, large := cost(1024), cost(16384)
	if large >= small {
		t.Errorf("16K cells cost %d cycles, 1K cells cost %d; larger cells must be cheaper", large, small)
	}
}

// TestHandoffAllocFree pins the zero-allocation contract of the
// descriptor path: after warm-up, publish → drain → release → finish
// allocates nothing (satellite: 0 allocs/op on the handoff path).
func TestHandoffAllocFree(t *testing.T) {
	var rel Releaser
	d := NewDomainCfg(DefaultProfile, Config{EagerMax: 1024}, 2,
		func(dst int, bits match.Bits, src int, data []byte, arrival vtime.Time, vci int) {}, nil)
	d.SetDeliverView(func(dst int, bits match.Bits, src int, view []byte, arrival vtime.Time, vci int, r Releaser) {
		rel = r
	})
	d.Bind(0, newTestMeter())
	d.Bind(1, newTestMeter())
	bits := match.MakeBits(0, 0, 0)
	payload := make([]byte, 65536)

	cycle := func() {
		h := d.SendVCI(0, 1, bits, payload, 0)
		if h == nil {
			t.Fatal("large payload did not take the handoff path")
		}
		d.Progress(1)
		if rel == nil {
			t.Fatal("view not delivered")
		}
		rel.Release(false)
		rel = nil
		if !h.Done() {
			t.Fatal("release did not complete the handoff")
		}
		d.FinishHandoff(h)
	}
	cycle() // warm up the freelist and ring
	allocs := testing.AllocsPerRun(100, cycle)
	if allocs != 0 {
		t.Errorf("handoff cycle allocates %.1f objects/op, want 0", allocs)
	}
}

// TestHandoffWaitGraph pins the observability line for a lent buffer
// whose ack is outstanding.
func TestHandoffWaitGraph(t *testing.T) {
	d := NewDomainCfg(DefaultProfile, Config{EagerMax: 128}, 2,
		func(dst int, bits match.Bits, src int, data []byte, arrival vtime.Time, vci int) {}, nil)
	d.SetDeliverView(func(dst int, bits match.Bits, src int, view []byte, arrival vtime.Time, vci int, r Releaser) {
		// Keep the view: the ack stays outstanding.
	})
	d.Bind(0, newTestMeter())
	d.Bind(1, newTestMeter())
	h := d.SendVCI(0, 1, match.MakeBits(0, 0, 0), make([]byte, 4096), 0)
	if h == nil {
		t.Fatal("expected handoff")
	}
	d.Progress(1)
	var sb strings.Builder
	d.WriteWaitGraph(&sb)
	if !strings.Contains(sb.String(), "rank 0 awaits handoff ack from rank 1") {
		t.Errorf("wait graph missing handoff line:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "4096 byte(s) lent") {
		t.Errorf("wait graph missing lent byte count:\n%s", sb.String())
	}
}

// TestHandoffViewIdentity pins zero-copy semantics proper: the
// delivered view aliases the sender's buffer (no bytes moved), and a
// staged send of the same payload delivers equal bytes.
func TestHandoffViewIdentity(t *testing.T) {
	payload := make([]byte, 8192)
	for i := range payload {
		payload[i] = byte(i * 17)
	}
	var view []byte
	var viewRel Releaser
	d := NewDomainCfg(DefaultProfile, Config{EagerMax: 1024}, 2,
		func(dst int, bits match.Bits, src int, data []byte, arrival vtime.Time, vci int) {}, nil)
	d.SetDeliverView(func(dst int, bits match.Bits, src int, v []byte, arrival vtime.Time, vci int, r Releaser) {
		view, viewRel = v, r
	})
	d.Bind(0, newTestMeter())
	d.Bind(1, newTestMeter())
	h := d.SendVCI(0, 1, match.MakeBits(0, 0, 0), payload, 0)
	d.Progress(1)
	if view == nil {
		t.Fatal("no view delivered")
	}
	if &view[0] != &payload[0] || len(view) != len(payload) {
		t.Error("handoff view does not alias the sender's buffer")
	}
	viewRel.Release(true)
	d.FinishHandoff(h)

	// Staged reference delivers the same bytes.
	var staged []byte
	d2, boxes, _ := newTestDomain(2)
	d2.Send(0, 1, match.MakeBits(0, 0, 0), payload)
	d2.Progress(1)
	staged = (*boxes[1])[0].data
	if !bytes.Equal(staged, payload) {
		t.Error("staged payload corrupted")
	}
}
