package shm

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"gompi/internal/instr"
	"gompi/internal/match"
	"gompi/internal/metrics"
	"gompi/internal/vtime"
)

type testMeter struct {
	prof  instr.Profile
	clock *vtime.Clock
	m     metrics.Rank
}

func newTestMeter() *testMeter { return &testMeter{clock: vtime.NewClock(2.2e9)} }

func (m *testMeter) Charge(cat instr.Category, n int64) {
	m.prof.Charge(cat, n)
	m.clock.Advance(n)
}
func (m *testMeter) ChargeCycles(cat instr.Category, n int64) {
	m.prof.ChargeCycles(cat, n)
	m.clock.Advance(n)
}
func (m *testMeter) Now() vtime.Time        { return m.clock.Now() }
func (m *testMeter) Sync(t vtime.Time)      { m.clock.Sync(t) }
func (m *testMeter) Metrics() *metrics.Rank { return &m.m }

type delivery struct {
	bits    match.Bits
	src     int
	data    []byte
	arrival vtime.Time
}

// newTestDomain returns a domain that records deliveries per rank.
func newTestDomain(n int) (*Domain, []*[]delivery, []*testMeter) {
	boxes := make([]*[]delivery, n)
	for i := range boxes {
		boxes[i] = new([]delivery)
	}
	d := NewDomain(DefaultProfile, n, func(dst int, bits match.Bits, src int, data []byte, arrival vtime.Time, vci int) {
		// Deliver lends the ring's reassembly scratch: copy to retain.
		cp := append([]byte(nil), data...)
		*boxes[dst] = append(*boxes[dst], delivery{bits, src, cp, arrival})
	}, nil)
	meters := make([]*testMeter, n)
	for i := range meters {
		meters[i] = newTestMeter()
		d.Bind(i, meters[i])
	}
	return d, boxes, meters
}

func TestSmallMessage(t *testing.T) {
	d, boxes, _ := newTestDomain(2)
	bits := match.MakeBits(1, 0, 5)
	d.Send(0, 1, bits, []byte("hi"))
	if n := d.Progress(1); n != 1 {
		t.Fatalf("Progress delivered %d, want 1", n)
	}
	got := (*boxes[1])[0]
	if got.src != 0 || got.bits != bits || string(got.data) != "hi" {
		t.Fatalf("delivery = %+v", got)
	}
}

func TestZeroLengthMessage(t *testing.T) {
	d, boxes, _ := newTestDomain(2)
	d.Send(0, 1, match.MakeBits(1, 0, 0), nil)
	if n := d.Progress(1); n != 1 {
		t.Fatalf("Progress delivered %d, want 1", n)
	}
	if len((*boxes[1])[0].data) != 0 {
		t.Fatal("zero-length message delivered with data")
	}
}

func TestFragmentationReassembly(t *testing.T) {
	d, boxes, _ := newTestDomain(2)
	msg := make([]byte, 3*CellSize+123)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	d.Send(0, 1, match.MakeBits(1, 0, 1), msg)
	if n := d.Progress(1); n != 1 {
		t.Fatalf("Progress delivered %d, want 1", n)
	}
	if !bytes.Equal((*boxes[1])[0].data, msg) {
		t.Fatal("reassembled message differs from sent")
	}
}

func TestFIFOOrderPerPair(t *testing.T) {
	d, boxes, _ := newTestDomain(2)
	for i := 0; i < 10; i++ {
		d.Send(0, 1, match.MakeBits(1, 0, i), []byte{byte(i)})
	}
	d.Progress(1)
	got := *boxes[1]
	if len(got) != 10 {
		t.Fatalf("delivered %d messages, want 10", len(got))
	}
	for i, dl := range got {
		if dl.bits.Tag() != i {
			t.Fatalf("message %d has tag %d (FIFO violated)", i, dl.bits.Tag())
		}
	}
}

func TestRingBackpressure(t *testing.T) {
	// A message far larger than the ring forces the producer to block
	// until the consumer drains; with a concurrent consumer it must
	// complete.
	d, boxes, _ := newTestDomain(2)
	msg := make([]byte, 3*RingCells*CellSize)
	for i := range msg {
		msg[i] = byte(i)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.Send(0, 1, match.MakeBits(1, 0, 0), msg)
	}()
	for len(*boxes[1]) == 0 {
		d.Progress(1)
	}
	wg.Wait()
	if !bytes.Equal((*boxes[1])[0].data, msg) {
		t.Fatal("pipelined oversized message corrupted")
	}
}

func TestWakeCallback(t *testing.T) {
	var woke []int
	var mu sync.Mutex
	d := NewDomain(DefaultProfile, 2, func(int, match.Bits, int, []byte, vtime.Time, int) {}, func(dst, vci int) {
		mu.Lock()
		woke = append(woke, dst)
		mu.Unlock()
	})
	d.Bind(0, newTestMeter())
	d.Bind(1, newTestMeter())
	d.Send(0, 1, match.MakeBits(1, 0, 0), []byte{1})
	if len(woke) != 1 || woke[0] != 1 {
		t.Fatalf("wake calls = %v, want [1]", woke)
	}
}

func TestTransportChargesAndArrival(t *testing.T) {
	d, boxes, meters := newTestDomain(2)
	meters[0].clock.Advance(1000)
	d.Send(0, 1, match.MakeBits(1, 0, 0), []byte{1, 2, 3})
	d.Progress(1)
	if meters[0].prof.Count(instr.Transport) < DefaultProfile.SendOverhead {
		t.Error("sender not charged")
	}
	if meters[1].prof.Count(instr.Transport) < DefaultProfile.RecvOverhead {
		t.Error("receiver not charged")
	}
	if (*boxes[1])[0].arrival < 1000+vtime.Time(DefaultProfile.Latency) {
		t.Errorf("arrival %d before sender injection + latency", (*boxes[1])[0].arrival)
	}
}

func TestUnboundMeterPanics(t *testing.T) {
	d := NewDomain(DefaultProfile, 2, func(int, match.Bits, int, []byte, vtime.Time, int) {}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Send without bound meter did not panic")
		}
	}()
	d.Send(0, 1, match.MakeBits(1, 0, 0), []byte{1})
}

func TestNilDeliverPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDomain(nil deliver) did not panic")
		}
	}()
	NewDomain(DefaultProfile, 2, nil, nil)
}

func TestPendingFrom(t *testing.T) {
	d, _, _ := newTestDomain(2)
	if d.PendingFrom(0, 1) {
		t.Fatal("pending on fresh domain")
	}
	d.Send(0, 1, match.MakeBits(1, 0, 0), []byte{1})
	if !d.PendingFrom(0, 1) {
		t.Fatal("no pending after send")
	}
	d.Progress(1)
	if d.PendingFrom(0, 1) {
		t.Fatal("pending after drain")
	}
}

// Property: any message size up to several cells round-trips intact.
func TestRoundTripProperty(t *testing.T) {
	d, boxes, _ := newTestDomain(2)
	f := func(data []byte) bool {
		*boxes[1] = nil
		d.Send(0, 1, match.MakeBits(2, 0, 9), data)
		d.Progress(1)
		return len(*boxes[1]) == 1 && bytes.Equal((*boxes[1])[0].data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: k messages in, k deliveries out, same payload multiset (per
// pair FIFO means same order).
func TestCountConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		d, boxes, _ := newTestDomain(2)
		for i, s := range sizes {
			data := make([]byte, int(s)%(2*CellSize))
			for j := range data {
				data[j] = byte(i)
			}
			d.Send(0, 1, match.MakeBits(1, 0, i), data)
			// Drain as we go so the bounded ring never blocks the
			// single-threaded test.
			d.Progress(1)
		}
		d.Progress(1)
		if len(*boxes[1]) != len(sizes) {
			return false
		}
		for i, dl := range *boxes[1] {
			if len(dl.data) != int(sizes[i])%(2*CellSize) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentPairs(t *testing.T) {
	// Four ranks all sending to rank 0 concurrently; rank 0 drains.
	const senders, msgs = 3, 200
	d, boxes, _ := newTestDomain(senders + 1)
	var wg sync.WaitGroup
	for s := 1; s <= senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				d.Send(s, 0, match.MakeBits(1, s, i), []byte{byte(s), byte(i)})
			}
		}(s)
	}
	for len(*boxes[0]) < senders*msgs {
		d.Progress(0)
	}
	wg.Wait()
	perSrc := map[int]int{}
	for _, dl := range *boxes[0] {
		if dl.bits.Tag() != perSrc[dl.src] {
			t.Fatalf("pair (%d,0) out of order: tag %d want %d", dl.src, dl.bits.Tag(), perSrc[dl.src])
		}
		perSrc[dl.src]++
	}
}

func TestAbortUnblocksFullRing(t *testing.T) {
	d, _, _ := newTestDomain(2)
	blocked := make(chan any, 1)
	go func() {
		defer func() { blocked <- recover() }()
		// Nobody drains: the producer must block on the full ring,
		// then panic once the domain aborts.
		big := make([]byte, 4*RingCells*CellSize)
		d.Send(0, 1, match.MakeBits(1, 0, 0), big)
		blocked <- nil
	}()
	// Let the producer fill the ring, then abort.
	for !d.PendingFrom(0, 1) {
	}
	d.Abort()
	if rec := <-blocked; rec == nil {
		t.Fatal("blocked producer did not panic on abort")
	}
}
