// Package shm is the shared-memory transport — the stand-in for CH4's
// POSIX shmmod. Ranks on the same node exchange messages through
// fixed-size cell rings: one single-producer/single-consumer ring per
// ordered on-node rank pair, allocated lazily. A message is fragmented
// into cells by the sender and reassembled by the receiver's progress
// loop, which then hands the complete message to a delivery callback
// (the CH4 device wires this to the rank's matching engine so netmod
// and shmmod traffic share one matching context).
//
// Above a configurable threshold (Config.EagerMax) the transport
// switches from the staged cell protocol to a zero-copy handoff: the
// sender publishes a borrowed read-only view of its user buffer as one
// header-only descriptor cell, the receiver consumes the view directly
// (a single copy into the posted buffer, or none at all when a
// reduction folds the view in place), and completion is signaled back
// to the sender as a header cell on the reverse ring so buffer-reuse
// semantics stay correct. See DESIGN.md §6e.
package shm

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"gompi/internal/abort"
	"gompi/internal/flight"
	"gompi/internal/instr"
	"gompi/internal/match"
	"gompi/internal/metrics"
	"gompi/internal/stall"
	"gompi/internal/vtime"
)

// CellSize is the default payload capacity of one ring cell. Real
// shmmods use cache-line-multiple cells; 4 KiB amortizes header costs
// for the halo exchanges the applications do.
const CellSize = 4096

// RingCells is the default number of cells per ring (256 KiB of
// payload per ordered pair).
const RingCells = 64

// Config overrides the transport's geometry and protocol thresholds.
// The zero value selects the package defaults with the handoff
// protocol disabled, which reproduces the historical staged-only
// behavior exactly.
type Config struct {
	// CellSize is the payload capacity of one ring cell in bytes
	// (default CellSize). Smaller cells mean more fragments and more
	// per-cell header charges for the same payload — the knob the
	// eager/handoff crossover sweep turns.
	CellSize int
	// RingCells is the number of cells per ring (default RingCells).
	RingCells int
	// EagerMax is the staged/handoff protocol threshold in bytes:
	// payloads strictly larger than it are published as zero-copy
	// handoff descriptors. 0 (the default) disables the handoff path.
	EagerMax int
	// MaxPeerBytes is the hard per-rank ceiling on modeled per-peer
	// state bytes; ring materialization counts toward it (mirroring the
	// fabric's connection accounting) and exceeding it panics the
	// creating rank. 0 means unlimited.
	MaxPeerBytes int64
}

// Modeled fixed costs of one SPSC ring beyond its cell payloads: the
// per-cell header (sequence, match bits, length fields) and the ring's
// own head/tail/scratch bookkeeping.
const (
	cellHeaderBytes = 64
	ringFixedBytes  = 192
)

// Profile is the shared-memory cost model: on-node messaging costs an
// order of magnitude less than NIC injection, which is the reason CH4
// dispatches on locality at all (the locality ablation benchmark
// measures exactly this gap).
type Profile struct {
	SendOverhead vtime.Cycles // per-message sender bookkeeping
	CellOverhead vtime.Cycles // per-cell header write/read
	PerByte      float64      // copy cost per byte (each side)
	Latency      vtime.Cycles // cache-coherence delivery latency
	RecvOverhead vtime.Cycles // per-message receiver bookkeeping
	// HandoffOverhead is the extra descriptor bookkeeping a zero-copy
	// handoff pays at publish (pinning the view, writing the
	// descriptor) instead of the staged path's per-cell copy charges.
	HandoffOverhead vtime.Cycles
}

// DefaultProfile models a contemporary two-socket node.
var DefaultProfile = Profile{
	SendOverhead:    90,
	CellOverhead:    20,
	PerByte:         0.25,
	Latency:         180,
	RecvOverhead:    70,
	HandoffOverhead: 60,
}

// Meter mirrors fabric.Meter; the transport charges costs to the
// calling rank. Defined here so shm does not depend on fabric.
type Meter interface {
	Charge(cat instr.Category, n int64)
	ChargeCycles(cat instr.Category, n int64)
	Now() vtime.Time
	Sync(t vtime.Time)
	Metrics() *metrics.Rank
}

// Deliver hands a fully reassembled message to the device on the
// receiving rank's goroutine. data is borrowed: it is the ring's
// reassembly scratch and is overwritten by the next message, so the
// callee must copy whatever it keeps before returning. vci is the
// sender-chosen virtual communication interface the message should land
// on (0 when the sender does not thread VCIs).
type Deliver func(dst int, bits match.Bits, src int, data []byte, arrival vtime.Time, vci int)

// Releaser is the receive side's handle on a lent handoff view: the
// consumer calls Release exactly once when it is finished reading the
// view, with copied saying whether it memcpy'd the payload out (true
// for a copy into a posted buffer, false for an in-place fold that
// never moved the bytes). After Release the view must not be touched —
// the sender is free to reuse its buffer.
type Releaser interface {
	Release(copied bool)
}

// DeliverView hands a zero-copy handoff view to the device on the
// receiving rank's goroutine. Unlike Deliver's scratch, view is the
// sender's live user buffer: it remains valid (read-only) until rel is
// released, so the device may park it unexpected without copying and
// consume it much later.
type DeliverView func(dst int, bits match.Bits, src int, view []byte, arrival vtime.Time, vci int, rel Releaser)

// Wake nudges a rank that may be parked waiting for transport events,
// naming the virtual interface the pending work belongs to.
type Wake func(dst, vci int)

// Domain is one node's (or a whole job's) shared-memory segment: the
// set of rings between co-located ranks.
type Domain struct {
	prof        Profile
	deliver     Deliver
	deliverView DeliverView
	wake        Wake
	aborted     abort.Flag

	cellSize     int
	ringCells    int
	eagerMax     int
	maxPeerBytes int64

	// stall is the optional stall watchdog (nil when disabled; all its
	// methods are nil-safe). Producers blocked on a full ring park with
	// it, and every drain that frees cells bumps its activity counter.
	stall *stall.Monitor

	mu     sync.Mutex
	rings  map[pair]*ring
	meters []Meter
	// incoming caches, per destination rank, the list of rings that
	// feed it; invalidated (nil) when a new ring to that rank appears.
	// Rings are never removed, so a cached list only ever goes stale by
	// growing — and growth resets it. Keeps Progress allocation-free.
	incoming [][]inRing
}

type pair struct{ src, dst int }

type inRing struct {
	src int
	r   *ring
}

// NewDomain creates a shared-memory domain for n ranks with the
// default geometry and the handoff protocol disabled.
func NewDomain(prof Profile, n int, deliver Deliver, wake Wake) *Domain {
	return NewDomainCfg(prof, Config{}, n, deliver, wake)
}

// NewDomainCfg is NewDomain with explicit geometry and protocol
// thresholds. Non-positive Config fields select the package defaults
// (EagerMax <= 0 disables the handoff path).
func NewDomainCfg(prof Profile, cfg Config, n int, deliver Deliver, wake Wake) *Domain {
	if deliver == nil {
		panic("shm: nil deliver callback")
	}
	if cfg.CellSize <= 0 {
		cfg.CellSize = CellSize
	}
	if cfg.RingCells <= 0 {
		cfg.RingCells = RingCells
	}
	if cfg.EagerMax < 0 {
		cfg.EagerMax = 0
	}
	return &Domain{
		prof:         prof,
		deliver:      deliver,
		wake:         wake,
		cellSize:     cfg.CellSize,
		ringCells:    cfg.RingCells,
		eagerMax:     cfg.EagerMax,
		maxPeerBytes: cfg.MaxPeerBytes,
		rings:        make(map[pair]*ring),
		meters:       make([]Meter, n),
		incoming:     make([][]inRing, n),
	}
}

// Bind attaches rank's meter. Must precede communication involving the
// rank.
func (d *Domain) Bind(rank int, m Meter) { d.meters[rank] = m }

// SetStall attaches the stall watchdog. Must be called before
// communication starts; nil detaches.
func (d *Domain) SetStall(m *stall.Monitor) { d.stall = m }

// SetDeliverView attaches the zero-copy view delivery callback. When
// unset, handoff views fall back to the staged Deliver callback (the
// view is handed over borrowed and released as a copy immediately
// after), so a Domain without device glue still moves handoff traffic
// correctly.
func (d *Domain) SetDeliverView(dv DeliverView) { d.deliverView = dv }

// Profile exposes the domain's cost model, so callers that move bytes
// through shared memory outside the ring protocol (zero-copy RMA on
// shm-backed windows) charge the same per-byte and per-cell costs.
func (d *Domain) Profile() Profile { return d.prof }

// CellBytes reports the configured ring-cell payload size; the staged
// RMA cost model fragments by it.
func (d *Domain) CellBytes() int { return d.cellSize }

// EagerMax reports the staged/handoff threshold (0 when the handoff
// path is disabled).
func (d *Domain) EagerMax() int { return d.eagerMax }

// Abort wakes producers blocked on full rings; their waits panic with
// abort.ErrWorldAborted.
func (d *Domain) Abort() {
	d.aborted.Raise()
	d.mu.Lock()
	rings := make([]*ring, 0, len(d.rings))
	for _, r := range d.rings {
		rings = append(rings, r)
	}
	d.mu.Unlock()
	for _, r := range rings {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	}
}

// ring is a bounded SPSC queue of cells from src to dst, laid out the
// way a real shmmod lays out its shared segment: a fixed circular
// buffer of fixed-size cells written in place by the producer and read
// in place by the consumer, with no allocation per message. The mutex
// models the ring's head/tail synchronization; producer blocks when
// full, consumer drains in Progress.
type ring struct {
	// prodMu serializes whole messages from concurrent producers (under
	// MPI_THREAD_MULTIPLE several goroutines of one rank may send to
	// the same destination): without it their fragments would
	// interleave in the SPSC ring and corrupt reassembly. It is held
	// across the entire fragmented message, including full-ring waits —
	// the consumer needs no producer locks, so draining always frees
	// the blocked producer.
	prodMu sync.Mutex
	// drainMu serializes consumers the same way: the reassembly scratch
	// below is shared state, and a message's fragments must be drained
	// by one goroutine.
	drainMu sync.Mutex

	mu    sync.Mutex
	cond  *sync.Cond
	cells []cell
	head  int // index of the oldest occupied cell
	count int // occupied cells

	// Handoff bookkeeping (under mu): views currently lent through this
	// ring and not yet released, for the deadlock-diagnosis dump, plus
	// the descriptor freelist that keeps the handoff path
	// allocation-free after warmup.
	hActive int
	hBytes  int
	hFree   *Handoff

	// Receiver-side reassembly state (consumer-only). cur is a
	// grow-only scratch reused across messages; delivered payloads are
	// borrowed slices of it.
	cur     []byte
	curBits match.Bits
	curVCI  int
	curLen  int
	filled  int
	arrival vtime.Time
}

type cell struct {
	bits    match.Bits
	vci     int // sender-chosen VCI (repeated in every fragment)
	msgLen  int // total message length (repeated in every fragment)
	n       int // payload bytes in this fragment
	arrival vtime.Time
	h       *Handoff // descriptor cell: lent view instead of payload
	data    []byte
}

// RingStateBytes reports the modeled memory footprint of one ring with
// the domain's geometry — the unit of shm per-peer state the
// MaxPeerBytes ceiling counts.
func (d *Domain) RingStateBytes() int64 {
	return int64(d.ringCells)*int64(d.cellSize+cellHeaderBytes) + ringFixedBytes
}

func (d *Domain) ring(src, dst int) *ring {
	d.mu.Lock()
	r := d.rings[pair{src, dst}]
	created := false
	if r == nil {
		r = &ring{cells: make([]cell, d.ringCells)}
		for i := range r.cells {
			r.cells[i].data = make([]byte, d.cellSize)
		}
		r.cond = sync.NewCond(&r.mu)
		d.rings[pair{src, dst}] = r
		d.incoming[dst] = nil // new feeder: rebuild dst's drain list
		created = true
	}
	m := d.meters[src]
	d.mu.Unlock()
	if created && m != nil {
		// Ring state is charged to its creator (the sender). The ring
		// is the first — and only — shm state toward that peer, so it
		// also counts as a peer touch.
		total := m.Metrics().NotePeerState(true, d.RingStateBytes())
		if d.maxPeerBytes > 0 && total > d.maxPeerBytes {
			panic(fmt.Sprintf("shm: rank %d per-peer state %d bytes exceeds MaxPeerBytes %d",
				src, total, d.maxPeerBytes))
		}
	}
	return r
}

// Preconnect materializes the src→dst ring eagerly — the all-pairs
// on-node setup the EagerPeers ablation restores at endpoint open.
func (d *Domain) Preconnect(src, dst int) {
	if src == dst {
		return
	}
	d.ring(src, dst)
}

// Handoff is one in-flight zero-copy transfer: the sender's view of
// the completion protocol. The sender must treat the lent buffer as
// immutable until Done reports true, then call the domain's
// FinishHandoff to charge the completion-ack read and recycle the
// descriptor. Handoffs come from a per-ring freelist, so the steady
// state allocates nothing.
type Handoff struct {
	d         *Domain
	r         *ring
	src, dst  int
	vci       int
	bytes     int
	view      []byte
	published vtime.Time
	ackAt     vtime.Time
	done      atomic.Bool
	next      *Handoff
}

// Done reports whether the receiver has released the lent view (the
// sender's buffer is reusable). The atomic load orders the receiver's
// ackAt write before the sender's FinishHandoff read.
func (h *Handoff) Done() bool { return h.done.Load() }

// Bytes reports the lent payload size.
func (h *Handoff) Bytes() int { return h.bytes }

// Release returns the lent view to the sender: the consumer charges
// the single direct copy (when copied) and the completion-ack header
// cell it writes on the reverse ring, then wakes the sender. Runs on
// the receiving rank's goroutine, exactly once per handoff.
func (h *Handoff) Release(copied bool) {
	d := h.d
	m := d.meters[h.dst]
	p := &d.prof
	cost := p.CellOverhead // completion-ack header cell write
	if copied {
		cost += vtime.Cycles(p.PerByte * float64(h.bytes))
	}
	m.ChargeCycles(instr.Transport, cost)
	h.ackAt = m.Now() + vtime.Time(p.Latency)
	r := h.r
	r.mu.Lock()
	r.hActive--
	r.hBytes -= h.bytes
	r.mu.Unlock()
	h.done.Store(true)
	d.stall.Activity()
	if d.wake != nil {
		d.wake(h.src, h.vci)
	}
}

// FinishHandoff completes the sender side of a released handoff: sync
// to the ack's arrival, charge the ack header read, record the
// publish→ack round trip, and recycle the descriptor. Call only after
// Done reports true, on the sending rank's goroutine.
func (d *Domain) FinishHandoff(h *Handoff) {
	m := d.meters[h.src]
	p := &d.prof
	m.Sync(h.ackAt)
	m.ChargeCycles(instr.Transport, p.CellOverhead) // completion-ack header read
	m.Metrics().Lat.HandoffRTT.Observe(int64(h.ackAt - h.published))
	m.Metrics().Flight.Record(flight.HandoffDone, int64(m.Now()), h.dst, h.bytes, h.vci)
	r := h.r
	h.view = nil
	h.bytes = 0
	h.done.Store(false)
	r.mu.Lock()
	h.next = r.hFree
	r.hFree = h
	r.mu.Unlock()
}

// Send fragments data into cells and pushes them onto the (src→dst)
// ring, blocking whenever the ring is full (bounded eager protocol).
// Zero-length messages occupy one header-only cell. The message lands
// on the destination's VCI 0. Send always stages — callers that can
// track handoff completion use SendVCI.
func (d *Domain) Send(src, dst int, bits match.Bits, data []byte) {
	d.send(src, dst, bits, data, 0, false)
}

// SendStagedVCI is SendVCI restricted to the staged cell protocol:
// the payload is captured into ring cells before return, so the caller
// may reuse its buffer immediately. Used for requestless sends that
// have no way to observe a handoff completion.
func (d *Domain) SendStagedVCI(src, dst int, bits match.Bits, data []byte, vci int) {
	d.send(src, dst, bits, data, vci, false)
}

// SendVCI is Send with an explicit destination virtual interface: the
// sender's hint-refined VCI choice travels with every fragment so the
// receiving device deposits the reassembled message on the right
// matching context. Payloads above the configured EagerMax take the
// zero-copy handoff path and return a non-nil Handoff: the caller must
// keep data immutable until the handoff is Done, then FinishHandoff.
// A nil return means the payload was staged and the buffer is free.
func (d *Domain) SendVCI(src, dst int, bits match.Bits, data []byte, vci int) *Handoff {
	return d.send(src, dst, bits, data, vci, true)
}

func (d *Domain) send(src, dst int, bits match.Bits, data []byte, vci int, allowHandoff bool) *Handoff {
	m := d.meters[src]
	if m == nil {
		panic(fmt.Sprintf("shm: rank %d sent without a bound meter", src))
	}
	p := &d.prof
	m.ChargeCycles(instr.Transport, p.SendOverhead)
	// Receive-side accounting happens where the reassembled message is
	// delivered into the endpoint (DepositShm), on the receiving rank.
	m.Metrics().ShmSend.Note(len(data))
	if allowHandoff && d.eagerMax > 0 && len(data) > d.eagerMax {
		return d.publishHandoff(src, dst, bits, data, vci, m)
	}
	m.Metrics().Flight.Record(flight.ShmSend, int64(m.Now()), dst, len(data), vci)
	if len(data) > 0 {
		m.Metrics().CopiesStaged.Note(len(data)) // sender copy-in to cells
	}
	r := d.ring(src, dst)

	r.prodMu.Lock()
	defer r.prodMu.Unlock()
	parked := false
	defer func() {
		if parked {
			d.stall.Unpark(src)
		}
	}()
	off := 0
	for {
		n := len(data) - off
		if n > d.cellSize {
			n = d.cellSize
		}
		m.ChargeCycles(instr.Transport, p.CellOverhead+vtime.Cycles(p.PerByte*float64(n)))
		arrival := m.Now() + vtime.Time(p.Latency)

		r.mu.Lock()
		for r.count >= d.ringCells {
			d.aborted.CheckLocked(&r.mu)
			if !parked {
				parked = true
				d.stall.Park(src)
				m.Metrics().Flight.Record(flight.Park, int64(m.Now()), dst, 0, vci)
			}
			r.cond.Wait()
		}
		c := &r.cells[(r.head+r.count)%d.ringCells]
		c.bits, c.vci, c.msgLen, c.n, c.arrival, c.h = bits, vci, len(data), n, arrival, nil
		copy(c.data, data[off:off+n])
		r.count++
		r.cond.Broadcast()
		r.mu.Unlock()
		if d.wake != nil {
			d.wake(dst, vci)
		}

		off += n
		if off >= len(data) {
			return nil
		}
	}
}

// publishHandoff pushes one descriptor cell lending data to dst. The
// descriptor occupies a normal ring slot (FIFO with staged traffic, so
// same-pair ordering is preserved) but carries no payload: the staged
// path's per-cell copy charges are replaced by one HandoffOverhead.
func (d *Domain) publishHandoff(src, dst int, bits match.Bits, data []byte, vci int, m Meter) *Handoff {
	p := &d.prof
	m.ChargeCycles(instr.Transport, p.HandoffOverhead)
	m.Metrics().ShmHandoff.Note(len(data))
	m.Metrics().Flight.Record(flight.ShmHandoff, int64(m.Now()), dst, len(data), vci)
	r := d.ring(src, dst)

	r.prodMu.Lock()
	defer r.prodMu.Unlock()
	parked := false
	defer func() {
		if parked {
			d.stall.Unpark(src)
		}
	}()
	arrival := m.Now() + vtime.Time(p.Latency)

	r.mu.Lock()
	for r.count >= d.ringCells {
		d.aborted.CheckLocked(&r.mu)
		if !parked {
			parked = true
			d.stall.Park(src)
			m.Metrics().Flight.Record(flight.Park, int64(m.Now()), dst, 0, vci)
		}
		r.cond.Wait()
	}
	h := r.hFree
	if h != nil {
		r.hFree = h.next
		h.next = nil
	} else {
		h = &Handoff{}
	}
	h.d, h.r, h.src, h.dst, h.vci = d, r, src, dst, vci
	h.view, h.bytes = data, len(data)
	h.published = m.Now()
	c := &r.cells[(r.head+r.count)%d.ringCells]
	c.bits, c.vci, c.msgLen, c.n, c.arrival, c.h = bits, vci, len(data), 0, arrival, h
	r.count++
	r.hActive++
	r.hBytes += len(data)
	r.cond.Broadcast()
	r.mu.Unlock()
	if d.wake != nil {
		d.wake(dst, vci)
	}
	return h
}

// Progress drains rank's incoming rings, reassembling messages and
// delivering completed ones. It returns the number of messages
// delivered. Runs on rank's goroutine only.
func (d *Domain) Progress(rank int) int {
	d.mu.Lock()
	incoming := d.incoming[rank]
	if incoming == nil {
		for p, r := range d.rings {
			if p.dst == rank {
				incoming = append(incoming, inRing{p.src, r})
			}
		}
		d.incoming[rank] = incoming
	}
	d.mu.Unlock()

	meter := d.meters[rank]
	delivered := 0
	for _, in := range incoming {
		delivered += d.drainRing(rank, in.src, in.r, meter)
	}
	return delivered
}

// drainRing pops every available cell from one ring, reassembling into
// the ring's reusable scratch and delivering completed messages. The
// cell is consumed in place under the ring lock, then handed back to a
// blocked producer — no per-message allocation on either side.
// Descriptor cells are handed over as zero-copy views instead.
func (d *Domain) drainRing(rank, src int, r *ring, meter Meter) int {
	p := &d.prof
	delivered := 0
	r.drainMu.Lock()
	defer r.drainMu.Unlock()
	for {
		r.mu.Lock()
		if r.count == 0 {
			r.mu.Unlock()
			return delivered
		}
		c := &r.cells[r.head]
		if h := c.h; h != nil {
			// Descriptor cell: capture the header under the lock (the
			// slot is reusable by the producer the moment count drops)
			// and deliver the lent view.
			bits, vci, arrival := c.bits, c.vci, c.arrival
			c.h = nil
			r.head = (r.head + 1) % d.ringCells
			r.count--
			r.cond.Broadcast()
			r.mu.Unlock()
			d.stall.Activity()

			meter.ChargeCycles(instr.Transport, p.CellOverhead+p.RecvOverhead)
			if d.deliverView != nil {
				d.deliverView(rank, bits, src, h.view, arrival, vci, h)
			} else {
				// No view-aware device: hand the view over borrowed and
				// release it as a copy, matching Deliver's contract.
				d.deliver(rank, bits, src, h.view, arrival, vci)
				h.Release(true)
			}
			delivered++
			continue
		}
		n := c.n
		if r.filled == 0 { // first fragment of a message
			if cap(r.cur) < c.msgLen {
				r.cur = make([]byte, 0, c.msgLen)
			}
			r.cur = r.cur[:0]
			r.curBits = c.bits
			r.curVCI = c.vci
			r.curLen = c.msgLen
			r.arrival = c.arrival
		}
		r.cur = append(r.cur, c.data[:n]...)
		r.filled += n
		if c.arrival > r.arrival {
			r.arrival = c.arrival
		}
		r.head = (r.head + 1) % d.ringCells
		r.count--
		r.cond.Broadcast() // free a cell for a blocked producer
		r.mu.Unlock()
		d.stall.Activity()

		meter.ChargeCycles(instr.Transport, p.CellOverhead+vtime.Cycles(p.PerByte*float64(n)))

		if r.filled >= r.curLen {
			meter.ChargeCycles(instr.Transport, p.RecvOverhead)
			data := r.cur[:r.filled]
			if r.filled > 0 {
				meter.Metrics().CopiesStaged.Note(r.filled) // ring reassembly
			}
			r.filled, r.curLen = 0, 0
			d.deliver(rank, r.curBits, src, data, r.arrival, r.curVCI)
			delivered++
		}
	}
}

// PendingFrom reports whether any cells from src to rank are queued
// (used by tests).
func (d *Domain) PendingFrom(src, rank int) bool {
	d.mu.Lock()
	r := d.rings[pair{src, rank}]
	d.mu.Unlock()
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count > 0 || r.filled > 0
}

// WriteWaitGraph renders the domain's ring and handoff state for
// deadlock diagnosis: queued cells per ring and, critically, every
// lent view whose sender may be parked awaiting the completion ack.
// Ring locks are taken one at a time, so the dump is safe while ranks
// are parked.
func (d *Domain) WriteWaitGraph(w io.Writer) {
	d.mu.Lock()
	type entry struct {
		p pair
		r *ring
	}
	entries := make([]entry, 0, len(d.rings))
	for p, r := range d.rings {
		entries = append(entries, entry{p, r})
	}
	d.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].p.src != entries[j].p.src {
			return entries[i].p.src < entries[j].p.src
		}
		return entries[i].p.dst < entries[j].p.dst
	})
	for _, e := range entries {
		e.r.mu.Lock()
		count, filled := e.r.count, e.r.filled
		hActive, hBytes := e.r.hActive, e.r.hBytes
		e.r.mu.Unlock()
		if count > 0 || filled > 0 {
			fmt.Fprintf(w, "shm ring %d->%d: %d queued cell(s), %d byte(s) mid-reassembly\n",
				e.p.src, e.p.dst, count, filled)
		}
		if hActive > 0 {
			fmt.Fprintf(w, "shm: rank %d awaits handoff ack from rank %d (%d handoff(s), %d byte(s) lent)\n",
				e.p.src, e.p.dst, hActive, hBytes)
		}
	}
}
