// Package shm is the shared-memory transport — the stand-in for CH4's
// POSIX shmmod. Ranks on the same node exchange messages through
// fixed-size cell rings: one single-producer/single-consumer ring per
// ordered on-node rank pair, allocated lazily. A message is fragmented
// into cells by the sender and reassembled by the receiver's progress
// loop, which then hands the complete message to a delivery callback
// (the CH4 device wires this to the rank's matching engine so netmod
// and shmmod traffic share one matching context).
package shm

import (
	"fmt"
	"sync"

	"gompi/internal/abort"
	"gompi/internal/flight"
	"gompi/internal/instr"
	"gompi/internal/match"
	"gompi/internal/metrics"
	"gompi/internal/stall"
	"gompi/internal/vtime"
)

// CellSize is the payload capacity of one ring cell. Real shmmods use
// cache-line-multiple cells; 4 KiB amortizes header costs for the halo
// exchanges the applications do.
const CellSize = 4096

// RingCells is the number of cells per ring (256 KiB of payload per
// ordered pair).
const RingCells = 64

// Profile is the shared-memory cost model: on-node messaging costs an
// order of magnitude less than NIC injection, which is the reason CH4
// dispatches on locality at all (the locality ablation benchmark
// measures exactly this gap).
type Profile struct {
	SendOverhead vtime.Cycles // per-message sender bookkeeping
	CellOverhead vtime.Cycles // per-cell header write/read
	PerByte      float64      // copy cost per byte (each side)
	Latency      vtime.Cycles // cache-coherence delivery latency
	RecvOverhead vtime.Cycles // per-message receiver bookkeeping
}

// DefaultProfile models a contemporary two-socket node.
var DefaultProfile = Profile{
	SendOverhead: 90,
	CellOverhead: 20,
	PerByte:      0.25,
	Latency:      180,
	RecvOverhead: 70,
}

// Meter mirrors fabric.Meter; the transport charges costs to the
// calling rank. Defined here so shm does not depend on fabric.
type Meter interface {
	Charge(cat instr.Category, n int64)
	ChargeCycles(cat instr.Category, n int64)
	Now() vtime.Time
	Sync(t vtime.Time)
	Metrics() *metrics.Rank
}

// Deliver hands a fully reassembled message to the device on the
// receiving rank's goroutine. data is borrowed: it is the ring's
// reassembly scratch and is overwritten by the next message, so the
// callee must copy whatever it keeps before returning. vci is the
// sender-chosen virtual communication interface the message should land
// on (0 when the sender does not thread VCIs).
type Deliver func(dst int, bits match.Bits, src int, data []byte, arrival vtime.Time, vci int)

// Wake nudges a rank that may be parked waiting for transport events,
// naming the virtual interface the pending work belongs to.
type Wake func(dst, vci int)

// Domain is one node's (or a whole job's) shared-memory segment: the
// set of rings between co-located ranks.
type Domain struct {
	prof    Profile
	deliver Deliver
	wake    Wake
	aborted abort.Flag

	// stall is the optional stall watchdog (nil when disabled; all its
	// methods are nil-safe). Producers blocked on a full ring park with
	// it, and every drain that frees cells bumps its activity counter.
	stall *stall.Monitor

	mu     sync.Mutex
	rings  map[pair]*ring
	meters []Meter
}

type pair struct{ src, dst int }

// NewDomain creates a shared-memory domain for n ranks.
func NewDomain(prof Profile, n int, deliver Deliver, wake Wake) *Domain {
	if deliver == nil {
		panic("shm: nil deliver callback")
	}
	return &Domain{
		prof:    prof,
		deliver: deliver,
		wake:    wake,
		rings:   make(map[pair]*ring),
		meters:  make([]Meter, n),
	}
}

// Bind attaches rank's meter. Must precede communication involving the
// rank.
func (d *Domain) Bind(rank int, m Meter) { d.meters[rank] = m }

// SetStall attaches the stall watchdog. Must be called before
// communication starts; nil detaches.
func (d *Domain) SetStall(m *stall.Monitor) { d.stall = m }

// Abort wakes producers blocked on full rings; their waits panic with
// abort.ErrWorldAborted.
func (d *Domain) Abort() {
	d.aborted.Raise()
	d.mu.Lock()
	rings := make([]*ring, 0, len(d.rings))
	for _, r := range d.rings {
		rings = append(rings, r)
	}
	d.mu.Unlock()
	for _, r := range rings {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	}
}

// ring is a bounded SPSC queue of cells from src to dst, laid out the
// way a real shmmod lays out its shared segment: a fixed circular
// buffer of fixed-size cells written in place by the producer and read
// in place by the consumer, with no allocation per message. The mutex
// models the ring's head/tail synchronization; producer blocks when
// full, consumer drains in Progress.
type ring struct {
	// prodMu serializes whole messages from concurrent producers (under
	// MPI_THREAD_MULTIPLE several goroutines of one rank may send to
	// the same destination): without it their fragments would
	// interleave in the SPSC ring and corrupt reassembly. It is held
	// across the entire fragmented message, including full-ring waits —
	// the consumer needs no producer locks, so draining always frees
	// the blocked producer.
	prodMu sync.Mutex
	// drainMu serializes consumers the same way: the reassembly scratch
	// below is shared state, and a message's fragments must be drained
	// by one goroutine.
	drainMu sync.Mutex

	mu    sync.Mutex
	cond  *sync.Cond
	cells [RingCells]cell
	head  int // index of the oldest occupied cell
	count int // occupied cells

	// Receiver-side reassembly state (consumer-only). cur is a
	// grow-only scratch reused across messages; delivered payloads are
	// borrowed slices of it.
	cur     []byte
	curBits match.Bits
	curVCI  int
	curLen  int
	filled  int
	arrival vtime.Time
}

type cell struct {
	bits    match.Bits
	vci     int // sender-chosen VCI (repeated in every fragment)
	msgLen  int // total message length (repeated in every fragment)
	n       int // payload bytes in this fragment
	arrival vtime.Time
	data    [CellSize]byte
}

func (d *Domain) ring(src, dst int) *ring {
	d.mu.Lock()
	defer d.mu.Unlock()
	r := d.rings[pair{src, dst}]
	if r == nil {
		r = &ring{}
		r.cond = sync.NewCond(&r.mu)
		d.rings[pair{src, dst}] = r
	}
	return r
}

// Send fragments data into cells and pushes them onto the (src→dst)
// ring, blocking whenever the ring is full (bounded eager protocol).
// Zero-length messages occupy one header-only cell. The message lands
// on the destination's VCI 0.
func (d *Domain) Send(src, dst int, bits match.Bits, data []byte) {
	d.SendVCI(src, dst, bits, data, 0)
}

// SendVCI is Send with an explicit destination virtual interface: the
// sender's hint-refined VCI choice travels with every fragment so the
// receiving device deposits the reassembled message on the right
// matching context.
func (d *Domain) SendVCI(src, dst int, bits match.Bits, data []byte, vci int) {
	m := d.meters[src]
	if m == nil {
		panic(fmt.Sprintf("shm: rank %d sent without a bound meter", src))
	}
	p := &d.prof
	m.ChargeCycles(instr.Transport, p.SendOverhead)
	// Receive-side accounting happens where the reassembled message is
	// delivered into the endpoint (DepositShm), on the receiving rank.
	m.Metrics().ShmSend.Note(len(data))
	m.Metrics().Flight.Record(flight.ShmSend, int64(m.Now()), dst, len(data), vci)
	r := d.ring(src, dst)

	r.prodMu.Lock()
	defer r.prodMu.Unlock()
	parked := false
	defer func() {
		if parked {
			d.stall.Unpark(src)
		}
	}()
	off := 0
	for {
		n := len(data) - off
		if n > CellSize {
			n = CellSize
		}
		m.ChargeCycles(instr.Transport, p.CellOverhead+vtime.Cycles(p.PerByte*float64(n)))
		arrival := m.Now() + vtime.Time(p.Latency)

		r.mu.Lock()
		for r.count >= RingCells {
			d.aborted.CheckLocked(&r.mu)
			if !parked {
				parked = true
				d.stall.Park(src)
				m.Metrics().Flight.Record(flight.Park, int64(m.Now()), dst, 0, vci)
			}
			r.cond.Wait()
		}
		c := &r.cells[(r.head+r.count)%RingCells]
		c.bits, c.vci, c.msgLen, c.n, c.arrival = bits, vci, len(data), n, arrival
		copy(c.data[:], data[off:off+n])
		r.count++
		r.cond.Broadcast()
		r.mu.Unlock()
		if d.wake != nil {
			d.wake(dst, vci)
		}

		off += n
		if off >= len(data) {
			return
		}
	}
}

// Progress drains rank's incoming rings, reassembling messages and
// delivering completed ones. It returns the number of messages
// delivered. Runs on rank's goroutine only.
func (d *Domain) Progress(rank int) int {
	d.mu.Lock()
	type src struct {
		rank int
		r    *ring
	}
	var incoming []src
	for p, r := range d.rings {
		if p.dst == rank {
			incoming = append(incoming, src{p.src, r})
		}
	}
	d.mu.Unlock()

	meter := d.meters[rank]
	delivered := 0
	for _, in := range incoming {
		delivered += d.drainRing(rank, in.rank, in.r, meter)
	}
	return delivered
}

// drainRing pops every available cell from one ring, reassembling into
// the ring's reusable scratch and delivering completed messages. The
// cell is consumed in place under the ring lock, then handed back to a
// blocked producer — no per-message allocation on either side.
func (d *Domain) drainRing(rank, src int, r *ring, meter Meter) int {
	p := &d.prof
	delivered := 0
	r.drainMu.Lock()
	defer r.drainMu.Unlock()
	for {
		r.mu.Lock()
		if r.count == 0 {
			r.mu.Unlock()
			return delivered
		}
		c := &r.cells[r.head]
		n := c.n
		if r.filled == 0 { // first fragment of a message
			if cap(r.cur) < c.msgLen {
				r.cur = make([]byte, 0, c.msgLen)
			}
			r.cur = r.cur[:0]
			r.curBits = c.bits
			r.curVCI = c.vci
			r.curLen = c.msgLen
			r.arrival = c.arrival
		}
		r.cur = append(r.cur, c.data[:n]...)
		r.filled += n
		if c.arrival > r.arrival {
			r.arrival = c.arrival
		}
		r.head = (r.head + 1) % RingCells
		r.count--
		r.cond.Broadcast() // free a cell for a blocked producer
		r.mu.Unlock()
		d.stall.Activity()

		meter.ChargeCycles(instr.Transport, p.CellOverhead+vtime.Cycles(p.PerByte*float64(n)))

		if r.filled >= r.curLen {
			meter.ChargeCycles(instr.Transport, p.RecvOverhead)
			data := r.cur[:r.filled]
			r.filled, r.curLen = 0, 0
			d.deliver(rank, r.curBits, src, data, r.arrival, r.curVCI)
			delivered++
		}
	}
}

// PendingFrom reports whether any cells from src to rank are queued
// (used by tests).
func (d *Domain) PendingFrom(src, rank int) bool {
	d.mu.Lock()
	r := d.rings[pair{src, rank}]
	d.mu.Unlock()
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count > 0 || r.filled > 0
}
