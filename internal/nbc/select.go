package nbc

import (
	"fmt"

	"gompi/internal/metrics"
)

// Force names an algorithm family the user pinned via the
// gompi_coll_algorithm info key or Config.CollAlgorithm. ForceAuto
// (the default) leaves selection to the size/topology cutoffs below;
// a forced family that does not apply to a collective (or whose
// preconditions fail) falls back to the canonical algorithm.
type Force int

// Forced algorithm families.
const (
	ForceAuto Force = iota
	ForceFlat     // disable two-level even on hierarchical topologies
	ForceTwoLevel // hierarchical leader-based algorithms
	ForceBinomial
	ForceScatterAllgather
	ForceRDouble
	ForceRSAG
	ForceReduceBcast
	ForceChain
	ForceRing
	ForceBruck
	ForcePairwise
	ForcePosted
)

var forceNames = map[string]Force{
	"":                  ForceAuto,
	"auto":              ForceAuto,
	"flat":              ForceFlat,
	"two-level":         ForceTwoLevel,
	"binomial":          ForceBinomial,
	"scatter-allgather": ForceScatterAllgather,
	"rdouble":           ForceRDouble,
	"rsag":              ForceRSAG,
	"reduce-bcast":      ForceReduceBcast,
	"chain":             ForceChain,
	"ring":              ForceRing,
	"bruck":             ForceBruck,
	"pairwise":          ForcePairwise,
	"posted":            ForcePosted,
}

// ParseForce resolves a user-supplied algorithm name.
func ParseForce(s string) (Force, error) {
	if f, ok := forceNames[s]; ok {
		return f, nil
	}
	return ForceAuto, fmt.Errorf("nbc: unknown collective algorithm %q", s)
}

// Size cutoffs for automatic selection, in bytes of per-rank payload.
// They mirror the shape of MPICH's tuning tables: latency-bound
// algorithms below, bandwidth-bound rearrangements above.
const (
	// BcastLongMsg is where broadcast switches from the binomial tree
	// (n*log P per rank) to scatter+ring-allgather (~2n per rank).
	BcastLongMsg = 8192
	// AllreduceLongMsg is where allreduce switches from recursive
	// doubling to Rabenseifner reduce-scatter + allgather.
	AllreduceLongMsg = 8192
	// AllgatherBruckMax caps the Bruck algorithm (log-P rounds, but
	// data is forwarded repeatedly) before the ring takes over.
	AllgatherBruckMax = 2048
	// AlltoallPostedMax / AlltoallPostedMaxRanks bound the post-all
	// single-round algorithm; beyond either, pairwise rounds bound the
	// number of simultaneously buffered messages.
	AlltoallPostedMax      = 1024
	AlltoallPostedMaxRanks = 16
)

// SelectBcast picks the broadcast algorithm for an nbytes payload.
func SelectBcast(t Transport, nbytes int, f Force) int {
	switch f {
	case ForceBinomial:
		return metrics.CollBcastBinomial
	case ForceScatterAllgather:
		return metrics.CollBcastScatterAllgather
	case ForceTwoLevel:
		return metrics.CollBcastTwoLevel
	}
	if f != ForceFlat && TwoLevel(t) {
		return metrics.CollBcastTwoLevel
	}
	if nbytes > BcastLongMsg && t.Size() >= 8 {
		return metrics.CollBcastScatterAllgather
	}
	return metrics.CollBcastBinomial
}

// SelectReduce picks the reduce algorithm. Non-commutative operations
// always take the rank-ordered chain.
func SelectReduce(t Transport, nbytes int, commutative bool, f Force) int {
	if !commutative || f == ForceChain {
		return metrics.CollReduceChain
	}
	return metrics.CollReduceBinomial
}

// zcAllreduce reports whether the zero-copy two-level allreduce
// applies: the transport offers handoff lending plus in-place
// receive-reduce, and the payload clears the handoff threshold (below
// it, staged cells win — that is what the threshold means).
func zcAllreduce(t Transport, nbytes int) bool {
	ht, ok := t.(HandoffTransport)
	if !ok {
		return false
	}
	if _, ok := t.(ReduceTransport); !ok {
		return false
	}
	e := ht.HandoffEager()
	return e > 0 && nbytes > e
}

// SelectAllreduce picks the allreduce algorithm for count elements of
// elemSize bytes each. Non-commutative operations always take the
// chain-reduce + broadcast composition.
func SelectAllreduce(t Transport, count, elemSize int, commutative bool, f Force) int {
	if !commutative {
		return metrics.CollAllreduceReduceBcast
	}
	size := t.Size()
	pow2 := isPow2(size)
	divisible := size > 0 && count%size == 0
	nbytes := count * elemSize
	switch f {
	case ForceRDouble:
		if pow2 {
			return metrics.CollAllreduceRecDoubling
		}
		return metrics.CollAllreduceReduceBcast
	case ForceRSAG:
		if pow2 && divisible {
			return metrics.CollAllreduceRedScatGather
		}
		return metrics.CollAllreduceReduceBcast
	case ForceTwoLevel:
		if zcAllreduce(t, nbytes) {
			return metrics.CollAllreduceTwoLevelZC
		}
		return metrics.CollAllreduceTwoLevel
	case ForceReduceBcast:
		return metrics.CollAllreduceReduceBcast
	}
	if f != ForceFlat && TwoLevel(t) {
		if zcAllreduce(t, nbytes) {
			return metrics.CollAllreduceTwoLevelZC
		}
		return metrics.CollAllreduceTwoLevel
	}
	if pow2 && divisible && nbytes > AllreduceLongMsg {
		return metrics.CollAllreduceRedScatGather
	}
	if pow2 {
		return metrics.CollAllreduceRecDoubling
	}
	return metrics.CollAllreduceReduceBcast
}

// SelectAllgather picks the allgather algorithm for an nbytes-per-rank
// block.
func SelectAllgather(t Transport, nbytes int, f Force) int {
	switch f {
	case ForceRing:
		return metrics.CollAllgatherRing
	case ForceBruck:
		return metrics.CollAllgatherBruck
	}
	if nbytes <= AllgatherBruckMax {
		return metrics.CollAllgatherBruck
	}
	return metrics.CollAllgatherRing
}

// SelectAlltoall picks the alltoall algorithm for an nbytes-per-peer
// block.
func SelectAlltoall(t Transport, nbytes int, f Force) int {
	switch f {
	case ForcePairwise:
		return metrics.CollAlltoallPairwise
	case ForcePosted:
		return metrics.CollAlltoallPosted
	}
	if nbytes <= AlltoallPostedMax && t.Size() <= AlltoallPostedMaxRanks {
		return metrics.CollAlltoallPosted
	}
	return metrics.CollAlltoallPairwise
}
