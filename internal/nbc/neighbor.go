package nbc

// Neighborhood collectives: each rank exchanges only with the
// neighbors its virtual topology declares (MPI_NEIGHBOR_ALLGATHER and
// friends). The compilers below are single-round — every declared
// transfer is independent — so the interesting work is the posting
// order: pending completions are polled in posting order, which makes
// posting order the drain priority. Shm-reachable neighbors turn
// around orders of magnitude faster than net peers, so the compilers
// stably partition each peer list local-first: same-node traffic is
// injected and reaped before the schedule parks on the network.
//
// ProcNull neighbors (the open edges of a non-periodic Cartesian grid)
// are passed as -1: no transfer is emitted, and the corresponding
// receive block is zeroed through the schedule prologue so cached
// replays re-zero it exactly like a fresh compile.

import (
	"fmt"

	"gompi/internal/metrics"
)

// nodeOf resolves a rank's node id, taking the arithmetic BlockTopo
// fast path when the transport offers it.
func nodeOf(t Transport, rpn int, rank int) int {
	if rpn > 0 {
		return rank / rpn
	}
	return t.Node(rank)
}

// orderLocalFirst returns a posting order over peers (indices into the
// slice) with same-node neighbors first. The partition is stable, so
// repeated neighbors keep their relative order and pairwise FIFO
// matching is preserved on both sides of every exchange. Negative
// (ProcNull) entries are dropped.
func orderLocalFirst(t Transport, peers []int) []int {
	rpn := 0
	if bt, ok := t.(BlockTopo); ok {
		if r, exact := bt.RanksPerNodeBlock(); exact {
			rpn = r
		}
	}
	myNode := nodeOf(t, rpn, t.Rank())
	order := make([]int, 0, len(peers))
	for i, p := range peers {
		if p >= 0 && nodeOf(t, rpn, p) == myNode {
			order = append(order, i)
		}
	}
	for i, p := range peers {
		if p >= 0 && nodeOf(t, rpn, p) != myNode {
			order = append(order, i)
		}
	}
	return order
}

// NeighborAllgather compiles the neighborhood allgather: the rank's
// sendBuf goes to every destination, and each source's block lands in
// recv at that source's position in the sources list. Block size is
// len(sendBuf); recv must hold len(sources) blocks.
func NeighborAllgather(t Transport, tag int, sendBuf, recv []byte, sources, destinations []int) (*Schedule, error) {
	bs := len(sendBuf)
	if len(recv) < bs*len(sources) {
		return nil, fmt.Errorf("nbc: neighbor allgather recv buffer %d < %d", len(recv), bs*len(sources))
	}
	s := newSchedule(t, tag, metrics.CollNeighborAllgather, bs)
	var zero []byte
	for i, src := range sources {
		if src < 0 && bs > 0 {
			if zero == nil {
				zero = make([]byte, bs)
			}
			s.init(recv[i*bs:(i+1)*bs], zero)
		}
	}
	var comm []step
	for _, j := range orderLocalFirst(t, destinations) {
		comm = append(comm, sendNoCopyTo(sendBuf, destinations[j]))
	}
	for _, i := range orderLocalFirst(t, sources) {
		comm = append(comm, recvFrom(recv[i*bs:(i+1)*bs], sources[i]))
	}
	s.addRound(round{comm: comm})
	return s, nil
}

// NeighborAlltoall compiles the neighborhood all-to-all: send block j
// of sendBuf goes to destinations[j], and source i's block lands in
// recv block i. Both buffers are divided into equal blocks of bs
// bytes.
func NeighborAlltoall(t Transport, tag, bs int, sendBuf, recv []byte, sources, destinations []int) (*Schedule, error) {
	if len(sendBuf) < bs*len(destinations) {
		return nil, fmt.Errorf("nbc: neighbor alltoall send buffer %d < %d", len(sendBuf), bs*len(destinations))
	}
	if len(recv) < bs*len(sources) {
		return nil, fmt.Errorf("nbc: neighbor alltoall recv buffer %d < %d", len(recv), bs*len(sources))
	}
	s := newSchedule(t, tag, metrics.CollNeighborAlltoall, bs)
	var zero []byte
	for i, src := range sources {
		if src < 0 && bs > 0 {
			if zero == nil {
				zero = make([]byte, bs)
			}
			s.init(recv[i*bs:(i+1)*bs], zero)
		}
	}
	var comm []step
	for _, j := range orderLocalFirst(t, destinations) {
		comm = append(comm, sendNoCopyTo(sendBuf[j*bs:(j+1)*bs], destinations[j]))
	}
	for _, i := range orderLocalFirst(t, sources) {
		comm = append(comm, recvFrom(recv[i*bs:(i+1)*bs], sources[i]))
	}
	s.addRound(round{comm: comm})
	return s, nil
}

// NeighborAlltoallv is the ragged variant: per-destination byte counts
// and displacements into sendBuf, per-source byte counts and
// displacements into recv. Counts and displacement slices must match
// the neighbor lists in length.
func NeighborAlltoallv(t Transport, tag int, sendBuf []byte, sendCounts, sendDispls []int, recv []byte, recvCounts, recvDispls []int, sources, destinations []int) (*Schedule, error) {
	if len(sendCounts) != len(destinations) || len(sendDispls) != len(destinations) {
		return nil, fmt.Errorf("nbc: neighbor alltoallv send counts/displs %d/%d != %d destinations", len(sendCounts), len(sendDispls), len(destinations))
	}
	if len(recvCounts) != len(sources) || len(recvDispls) != len(sources) {
		return nil, fmt.Errorf("nbc: neighbor alltoallv recv counts/displs %d/%d != %d sources", len(recvCounts), len(recvDispls), len(sources))
	}
	total := 0
	for _, n := range sendCounts {
		total += n
	}
	s := newSchedule(t, tag, metrics.CollNeighborAlltoallv, total)
	var zero []byte
	for i, src := range sources {
		if src < 0 && recvCounts[i] > 0 {
			if len(zero) < recvCounts[i] {
				zero = make([]byte, recvCounts[i])
			}
			s.init(recv[recvDispls[i]:recvDispls[i]+recvCounts[i]], zero)
		}
	}
	var comm []step
	for _, j := range orderLocalFirst(t, destinations) {
		if sendCounts[j] == 0 {
			continue
		}
		comm = append(comm, sendNoCopyTo(sendBuf[sendDispls[j]:sendDispls[j]+sendCounts[j]], destinations[j]))
	}
	for _, i := range orderLocalFirst(t, sources) {
		if recvCounts[i] == 0 {
			continue
		}
		comm = append(comm, recvFrom(recv[recvDispls[i]:recvDispls[i]+recvCounts[i]], sources[i]))
	}
	s.addRound(round{comm: comm})
	return s, nil
}
