package nbc

// The schedule cache: compiled nonblocking-collective schedules keyed
// by everything that shaped the compilation, so a repeated collective
// with identical arguments replays the compiled round structure instead
// of rebuilding it. The paper's Section 4 charges MPI's per-call setup
// against the wire time; caching the schedule DAG removes exactly that
// setup from every call after the first.
//
// The cache is owned by the calling rank (collectives on one
// communicator are serialized per rank), so no locking is needed.

import (
	"reflect"
	"unsafe"
)

// CacheKind discriminates the collective family a cached schedule
// implements — two collectives with equal buffers but different shapes
// (say Ibcast and Iallreduce over the same slice) must never collide.
type CacheKind uint8

// Cached collective families.
const (
	CacheBarrier CacheKind = iota
	CacheBcast
	CacheReduce
	CacheAllreduce
	CacheAllgather
	CacheAlltoall
	CacheNeighborAllgather
	CacheNeighborAlltoall
)

// CacheKey identifies one compiled schedule. Buffer identity — base
// pointer and length — is part of the key: the compilers capture
// sub-slices of the caller's buffers inside the compiled steps, so a
// schedule is only replayable against the exact same memory. Value
// comparability (==) makes the key directly usable as a map key.
type CacheKey struct {
	Kind    CacheKind
	Algo    int     // resolved algorithm id (metrics.Coll*)
	Root    int     // rooted collectives; -1 otherwise
	Op      uint8   // reduction op; 0 otherwise
	Elem    uintptr // element datatype identity; 0 otherwise
	Send    uintptr // send buffer base (0 for in-place/absent)
	SendLen int
	Recv    uintptr // recv buffer base
	RecvLen int
	// Shape folds in any remaining shape the buffer identities miss —
	// the counts/displacements of ragged (v-variant) collectives.
	Shape uint64
}

// ShapeHash folds integer shape vectors (counts, displacements) into a
// CacheKey.Shape value with FNV-1a.
func ShapeHash(vecs ...[]int) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range vecs {
		for _, x := range v {
			h ^= uint64(x)
			h *= 1099511628211
		}
		h ^= 0xff // separator so ([1],[2]) differs from ([1,2])
		h *= 1099511628211
	}
	return h
}

// BufKey derives the (base, len) identity of a buffer for CacheKey
// fields. A nil or empty buffer keys as (0, 0).
func BufKey(b []byte) (uintptr, int) {
	if len(b) == 0 {
		return 0, 0
	}
	return uintptr(unsafe.Pointer(unsafe.SliceData(b))), len(b)
}

// PtrKey derives an identity for a pointer-shaped key component (e.g.
// the element datatype) via reflection, avoiding unsafe on arbitrary
// types.
func PtrKey(v any) uintptr {
	if v == nil {
		return 0
	}
	return reflect.ValueOf(v).Pointer()
}

// Cache maps keys to compiled schedules. The zero value is ready to
// use. One cache hangs off each public communicator, created lazily on
// the first cacheable collective.
type Cache struct {
	m      map[CacheKey]*Schedule
	hits   int64
	misses int64
}

// Get returns the cached schedule for key if one exists and is not
// currently running. A Running schedule cannot be replayed — the
// caller started the same collective twice with identical arguments
// before finishing the first — so the lookup deliberately misses and
// the caller compiles a fresh schedule for the overlapping call.
func (c *Cache) Get(key CacheKey) (*Schedule, bool) {
	s, ok := c.m[key]
	if ok && !s.Running() {
		c.hits++
		return s, true
	}
	c.misses++
	return nil, false
}

// Put stores a freshly compiled schedule under key, replacing any
// previous (necessarily running, per Get) occupant.
func (c *Cache) Put(key CacheKey, s *Schedule) {
	if c.m == nil {
		c.m = make(map[CacheKey]*Schedule)
	}
	c.m[key] = s
}

// Stats returns the lifetime hit/miss counts.
func (c *Cache) Stats() (hits, misses int64) { return c.hits, c.misses }
