package nbc

import (
	"fmt"

	"gompi/internal/coll"
	"gompi/internal/datatype"
	"gompi/internal/metrics"
)

// Step constructors.
func sendTo(buf []byte, peer int) step  { return step{kind: opSend, peer: peer, buf: buf} }
func recvFrom(buf []byte, peer int) step { return step{kind: opRecv, peer: peer, buf: buf} }
func reduceInto(op coll.Op, elem *datatype.Type, dst, src []byte) step {
	return step{kind: opReduce, op: op, elem: elem, dst: dst, src: src}
}
func copyInto(dst, src []byte) step { return step{kind: opCopy, dst: dst, src: src} }

// sendNoCopyTo marks a send eligible for the zero-copy handoff path:
// the buffer may be lent to the receiver for the rest of the round, so
// only use it for buffers the round does not mutate. Falls back to a
// plain send when the transport has no handoff or the payload is
// small, so compilers may mark on-node sends unconditionally.
func sendNoCopyTo(buf []byte, peer int) step {
	return step{kind: opSend, peer: peer, buf: buf, noCopy: true}
}

// recvReduceFrom folds the incoming payload from peer into acc in
// place (acc = incoming OP acc, arrival order). Emit only toward
// unsegmented peers — the payload must arrive as one message.
func recvReduceFrom(op coll.Op, elem *datatype.Type, acc []byte, peer int) step {
	return step{kind: opRecvReduce, peer: peer, dst: acc, op: op, elem: elem}
}

// lowbit returns the lowest set bit of v, or 0 for v == 0.
func lowbit(v int) int { return v & -v }

// nextPow2 returns the smallest power of two >= v.
func nextPow2(v int) int {
	p := 1
	for p < v {
		p *= 2
	}
	return p
}

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// topo is the node structure the two-level compilers exchange through.
type topo struct {
	leader  int   // my node's leader rank
	locals  []int // other ranks on my node, excluding the leader and me
	leaders []int // one leader per node, ascending node id
	myIdx   int   // my leader's index in leaders (-1 when I'm no leader)
}

// computeTopo derives the communicator's node structure. Each node's
// leader is its lowest rank, except that when prefer >= 0 (a broadcast
// root) the preferred rank leads its own node so the root's data never
// takes an extra intra-node hop. Transports that cache (TopoCache) or
// expose block geometry (BlockTopo) skip the O(size) derivation.
func computeTopo(t Transport, prefer int) topo {
	tc, cached := t.(TopoCache)
	if cached {
		if v, ok := tc.LoadTopo(prefer); ok {
			return v.(topo)
		}
	}
	tp := computeTopoScan(t, prefer)
	if cached {
		tc.StoreTopo(prefer, tp)
	}
	return tp
}

// blockTopo is computeTopo for the contiguous block mapping
// node(r) = r/rpn: every piece of the structure is arithmetic, so the
// cost is O(nodes) for the leader list plus O(rpn) for the local list.
func blockTopo(t Transport, prefer, rpn int) topo {
	size, me := t.Size(), t.Rank()
	nnodes := (size + rpn - 1) / rpn
	leaderOf := func(nd int) int {
		if prefer >= 0 && prefer/rpn == nd {
			return prefer
		}
		return nd * rpn
	}
	var tp topo
	myNode := me / rpn
	tp.leader = leaderOf(myNode)
	tp.leaders = make([]int, nnodes)
	for i := range tp.leaders {
		tp.leaders[i] = leaderOf(i)
	}
	tp.myIdx = -1
	if me == tp.leader {
		tp.myIdx = myNode
	}
	lo, hi := myNode*rpn, (myNode+1)*rpn
	if hi > size {
		hi = size
	}
	for r := lo; r < hi; r++ {
		if r != me && r != tp.leader {
			tp.locals = append(tp.locals, r)
		}
	}
	return tp
}

// computeTopoScan is the general derivation over an arbitrary
// rank→node mapping.
func computeTopoScan(t Transport, prefer int) topo {
	if bt, ok := t.(BlockTopo); ok {
		if rpn, ok := bt.RanksPerNodeBlock(); ok && rpn > 0 {
			return blockTopo(t, prefer, rpn)
		}
	}
	size := t.Size()
	leaderOf := map[int]int{}
	var nodes []int
	for r := 0; r < size; r++ {
		nd := t.Node(r)
		if cur, ok := leaderOf[nd]; !ok {
			leaderOf[nd] = r
			nodes = append(nodes, nd)
		} else if r < cur {
			leaderOf[nd] = r
		}
	}
	if prefer >= 0 {
		leaderOf[t.Node(prefer)] = prefer
	}
	var tp topo
	myNode := t.Node(t.Rank())
	tp.leader = leaderOf[myNode]
	tp.myIdx = -1
	// Node ids ascend with rank order on the world mapping; sort keeps
	// arbitrary subcommunicator mappings deterministic.
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j] < nodes[j-1]; j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
	for i, nd := range nodes {
		tp.leaders = append(tp.leaders, leaderOf[nd])
		if nd == myNode {
			tp.myIdx = i
		}
	}
	if t.Rank() != tp.leader {
		tp.myIdx = -1
	}
	for r := 0; r < size; r++ {
		if r != t.Rank() && r != tp.leader && t.Node(r) == myNode {
			tp.locals = append(tp.locals, r)
		}
	}
	return tp
}

// TwoLevel reports whether the topology rewards hierarchical
// algorithms: more than one node, and at least one node hosting more
// than one rank (so the intra-node phase rides the shm path).
func TwoLevel(t Transport) bool {
	size := t.Size()
	if size < 2 {
		return false
	}
	first := t.Node(0)
	multiNode, sharedNode := false, false
	seen := map[int]int{first: 1}
	for r := 1; r < size; r++ {
		nd := t.Node(r)
		seen[nd]++
		if nd != first {
			multiNode = true
		}
		if seen[nd] > 1 {
			sharedNode = true
		}
	}
	return multiNode && sharedNode
}

// Barrier compiles the dissemination barrier: ceil(log2 P) rounds of
// one send + one receive at doubling distance.
func Barrier(t Transport, tag int) *Schedule {
	s := newSchedule(t, tag, metrics.CollBarrierDissem, 0)
	rank, size := t.Rank(), t.Size()
	token := []byte{1}
	rbuf := make([]byte, 1)
	for dist := 1; dist < size; dist *= 2 {
		to := (rank + dist) % size
		from := (rank - dist + size) % size
		s.addRound(round{comm: []step{sendTo(token, to), recvFrom(rbuf, from)}})
	}
	return s
}

// Bcast compiles a broadcast of root's buf with the given algorithm
// (metrics.CollBcast*).
func Bcast(t Transport, tag int, buf []byte, root, algo int) (*Schedule, error) {
	if root < 0 || root >= t.Size() {
		return nil, fmt.Errorf("nbc: bcast root %d outside [0,%d)", root, t.Size())
	}
	s := newSchedule(t, tag, algo, len(buf))
	if t.Size() == 1 {
		return s, nil
	}
	switch algo {
	case metrics.CollBcastScatterAllgather:
		bcastScatterAllgather(s, buf, root)
	case metrics.CollBcastTwoLevel:
		bcastTwoLevel(s, buf, root)
	default:
		s.Algo = metrics.CollBcastBinomial
		bcastBinomial(s, buf, root)
	}
	return s, nil
}

// bcastBinomial emits the binomial tree: one receive round from the
// parent (none on the root), then one round sending to every child.
func bcastBinomial(s *Schedule, buf []byte, root int) {
	rank, size := s.t.Rank(), s.t.Size()
	vrank := (rank - root + size) % size
	if vrank != 0 {
		parent := (vrank&(vrank-1) + root) % size
		s.addRound(round{comm: []step{recvFrom(buf, parent)}})
	}
	limit := lowbit(vrank)
	if vrank == 0 {
		limit = nextPow2(size)
	}
	var sends []step
	for m := limit / 2; m >= 1; m /= 2 {
		if child := vrank + m; child < size {
			sends = append(sends, sendTo(buf, (child+root)%size))
		}
	}
	if len(sends) > 0 {
		s.addRound(round{comm: sends})
	}
}

// bcastScatterAllgather emits the long-message broadcast: the root
// scatters ceil(n/P)-byte blocks directly, then a ring allgather
// reassembles the full buffer everywhere — each rank moves ~2n bytes
// instead of the binomial's n*log P.
func bcastScatterAllgather(s *Schedule, buf []byte, root int) {
	rank, size := s.t.Rank(), s.t.Size()
	n := len(buf)
	bs := (n + size - 1) / size
	block := func(i int) []byte {
		lo, hi := i*bs, (i+1)*bs
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		return buf[lo:hi]
	}
	if rank == root {
		var sends []step
		for r := 0; r < size; r++ {
			if r != root {
				sends = append(sends, sendTo(block(r), r))
			}
		}
		s.addRound(round{comm: sends})
	} else {
		s.addRound(round{comm: []step{recvFrom(block(rank), root)}})
	}
	right := (rank + 1) % size
	left := (rank - 1 + size) % size
	for st := 0; st < size-1; st++ {
		sb := block((rank - st + size) % size)
		rb := block((rank - st - 1 + size) % size)
		s.addRound(round{comm: []step{sendTo(sb, right), recvFrom(rb, left)}})
	}
}

// bcastTwoLevel emits the hierarchical broadcast: the root sends once
// to each other node's leader over the network, and leaders fan out to
// their node-local ranks over shared memory — (#nodes-1)*n net bytes
// total, independent of ranks-per-node.
func bcastTwoLevel(s *Schedule, buf []byte, root int) {
	tp := computeTopo(s.t, root)
	rank := s.t.Rank()
	switch {
	case rank == root:
		var sends []step
		for _, l := range tp.leaders {
			if l != root {
				sends = append(sends, sendTo(buf, l))
			}
		}
		// The intra-node fan-out lends buf zero-copy when the transport
		// offers handoff: buf is read-only for the round, so one lent
		// view can serve every local receiver.
		for _, r := range tp.locals {
			sends = append(sends, sendNoCopyTo(buf, r))
		}
		if len(sends) > 0 {
			s.addRound(round{comm: sends})
		}
	case rank == tp.leader:
		s.addRound(round{comm: []step{recvFrom(buf, root)}})
		var sends []step
		for _, r := range tp.locals {
			sends = append(sends, sendNoCopyTo(buf, r))
		}
		if len(sends) > 0 {
			s.addRound(round{comm: sends})
		}
	default:
		s.addRound(round{comm: []step{recvFrom(buf, tp.leader)}})
	}
}

// Reduce compiles a reduction to root with the given algorithm
// (metrics.CollReduce*). recv is consumed only on the root.
func Reduce(t Transport, tag int, op coll.Op, elem *datatype.Type, sendBuf, recv []byte, root, algo int) (*Schedule, error) {
	if root < 0 || root >= t.Size() {
		return nil, fmt.Errorf("nbc: reduce root %d outside [0,%d)", root, t.Size())
	}
	if !coll.Commutative(op) {
		algo = metrics.CollReduceChain
	}
	s := newSchedule(t, tag, algo, len(sendBuf))
	if t.Size() == 1 {
		s.init(recv, sendBuf)
		return s, nil
	}
	if algo == metrics.CollReduceChain {
		reduceChain(s, op, elem, sendBuf, recv, root)
	} else {
		s.Algo = metrics.CollReduceBinomial
		reduceBinomial(s, op, elem, sendBuf, recv, root)
	}
	return s, nil
}

// reduceBinomial folds partials up the binomial tree (commutative ops
// only: children fold in tree order). The working accumulator is the
// root's recv buffer, or a private copy elsewhere, snapshotted at
// compile time as MPI's nonblocking semantics permit.
func reduceBinomial(s *Schedule, op coll.Op, elem *datatype.Type, sendBuf, recv []byte, root int) {
	rank, size := s.t.Rank(), s.t.Size()
	vrank := (rank - root + size) % size
	var acc []byte
	if rank == root {
		acc = recv[:len(sendBuf)]
	} else {
		acc = make([]byte, len(sendBuf))
	}
	s.init(acc, sendBuf)
	for m := 1; m < size; m *= 2 {
		if vrank&m != 0 {
			parent := ((vrank - m) + root) % size
			s.addRound(round{comm: []step{sendTo(acc, parent)}})
			return // leaf done
		}
		if childV := vrank + m; childV < size {
			child := (childV + root) % size
			tmp := make([]byte, len(sendBuf))
			s.addRound(round{
				comm:  []step{recvFrom(tmp, child)},
				local: []step{reduceInto(op, elem, acc, tmp)},
			})
		}
	}
}

// reduceChain folds contributions in strict rank order (the
// non-commutative algorithm): rank P-1 starts, each rank computes
// v_r OP partial and passes it down, rank 0 forwards the result to
// root.
func reduceChain(s *Schedule, op coll.Op, elem *datatype.Type, sendBuf, recv []byte, root int) {
	rank, size := s.t.Rank(), s.t.Size()
	if rank == size-1 {
		s.addRound(round{comm: []step{sendTo(sendBuf, rank-1)}})
	} else {
		tmp := make([]byte, len(sendBuf))
		s.addRound(round{
			comm:  []step{recvFrom(tmp, rank+1)},
			local: []step{reduceInto(op, elem, tmp, sendBuf)},
		})
		switch {
		case rank > 0:
			s.addRound(round{comm: []step{sendTo(tmp, rank-1)}})
		case root == 0:
			s.addRound(round{local: []step{copyInto(recv, tmp)}})
		default:
			s.addRound(round{comm: []step{sendTo(tmp, root)}})
		}
	}
	if rank == root && root != 0 {
		s.addRound(round{comm: []step{recvFrom(recv[:len(sendBuf)], 0)}})
	}
}

// Allreduce compiles an all-reduce with the given algorithm
// (metrics.CollAllreduce*). Non-commutative ops always take the
// rank-ordered reduce + broadcast composition.
func Allreduce(t Transport, tag int, op coll.Op, elem *datatype.Type, sendBuf, recv []byte, algo int) (*Schedule, error) {
	commutative := coll.Commutative(op)
	if !commutative {
		algo = metrics.CollAllreduceReduceBcast
	}
	s := newSchedule(t, tag, algo, len(sendBuf))
	size := t.Size()
	if size == 1 {
		s.init(recv, sendBuf)
		return s, nil
	}
	switch algo {
	case metrics.CollAllreduceRecDoubling:
		if !isPow2(size) {
			s.Algo = metrics.CollAllreduceReduceBcast
			allreduceReduceBcast(s, op, elem, sendBuf, recv)
			break
		}
		allreduceRecDoubling(s, op, elem, sendBuf, recv)
	case metrics.CollAllreduceRedScatGather:
		es := elem.Size()
		if !isPow2(size) || es == 0 || len(sendBuf)%(size*es) != 0 {
			s.Algo = metrics.CollAllreduceReduceBcast
			allreduceReduceBcast(s, op, elem, sendBuf, recv)
			break
		}
		allreduceRSAG(s, op, elem, sendBuf, recv)
	case metrics.CollAllreduceTwoLevel:
		allreduceTwoLevel(s, op, elem, sendBuf, recv)
	case metrics.CollAllreduceTwoLevelZC:
		// The zero-copy variant folds lent views in place, which needs
		// the transport extensions, an element-divisible payload, and a
		// commutative op (folds run in arrival order).
		ht, hok := t.(HandoffTransport)
		_, rok := t.(ReduceTransport)
		es := elem.Size()
		if !hok || !rok || ht.HandoffEager() <= 0 || es == 0 || len(sendBuf)%es != 0 {
			s.Algo = metrics.CollAllreduceTwoLevel
			allreduceTwoLevel(s, op, elem, sendBuf, recv)
			break
		}
		allreduceTwoLevelZC(s, op, elem, sendBuf, recv)
	default:
		s.Algo = metrics.CollAllreduceReduceBcast
		allreduceReduceBcast(s, op, elem, sendBuf, recv)
	}
	return s, nil
}

// allreduceRecDoubling is the classic log-P exchange for power-of-two
// worlds: each round swaps full vectors with rank^m and folds.
func allreduceRecDoubling(s *Schedule, op coll.Op, elem *datatype.Type, sendBuf, recv []byte) {
	rank, size := s.t.Rank(), s.t.Size()
	res := recv[:len(sendBuf)]
	s.init(res, sendBuf)
	tmp := make([]byte, len(sendBuf))
	for m := 1; m < size; m *= 2 {
		peer := rank ^ m
		s.addRound(round{
			comm:  []step{sendTo(res, peer), recvFrom(tmp, peer)},
			local: []step{reduceInto(op, elem, res, tmp)},
		})
	}
}

// allreduceRSAG is the Rabenseifner composition: recursive-halving
// reduce-scatter followed by a recursive-doubling allgather — each
// rank moves ~2n bytes instead of recursive doubling's n*log P, the
// long-message winner. Requires a power-of-two size and an element
// count divisible by it (the caller guarantees both).
func allreduceRSAG(s *Schedule, op coll.Op, elem *datatype.Type, sendBuf, recv []byte) {
	rank, size := s.t.Rank(), s.t.Size()
	es := elem.Size()
	res := recv[:len(sendBuf)]
	s.init(res, sendBuf)
	total := len(res) / es
	lo, cnt := 0, total
	tmp := make([]byte, (total/2)*es)
	for m := size / 2; m >= 1; m /= 2 {
		peer := rank ^ m
		half := cnt / 2
		var sendSeg, target []byte
		if rank&m == 0 {
			sendSeg = res[(lo+half)*es : (lo+cnt)*es]
			target = res[lo*es : (lo+half)*es]
		} else {
			sendSeg = res[lo*es : (lo+half)*es]
			target = res[(lo+half)*es : (lo+cnt)*es]
		}
		rbuf := tmp[:half*es]
		s.addRound(round{
			comm:  []step{sendTo(sendSeg, peer), recvFrom(rbuf, peer)},
			local: []step{reduceInto(op, elem, target, rbuf)},
		})
		if rank&m != 0 {
			lo += half
		}
		cnt = half
	}
	// Allgather retrace: mask m mirrors the reduce-scatter step that
	// split a 2*cnt block in half. The rank that kept the lower half
	// (rank&m == 0) fetches the upper from its peer, and vice versa —
	// computed from lo directly, since blocks are only size-aligned in
	// elements when the per-rank count is a power of two.
	for m := 1; m < size; m *= 2 {
		peer := rank ^ m
		peerLo := lo - cnt
		if rank&m == 0 {
			peerLo = lo + cnt
		}
		s.addRound(round{comm: []step{
			sendTo(res[lo*es:(lo+cnt)*es], peer),
			recvFrom(res[peerLo*es:(peerLo+cnt)*es], peer),
		}})
		if peerLo < lo {
			lo = peerLo
		}
		cnt *= 2
	}
}

// allreduceReduceBcast composes the rank-ordered (non-commutative) or
// binomial reduce to rank 0 with a binomial broadcast — the general
// fallback for non-power-of-two worlds. Same-tag composition is safe:
// both sides issue their rounds in the same global order, and no rank
// both sends reduce traffic and bcast traffic to the same peer.
func allreduceReduceBcast(s *Schedule, op coll.Op, elem *datatype.Type, sendBuf, recv []byte) {
	res := recv[:len(sendBuf)]
	if coll.Commutative(op) {
		reduceBinomial(s, op, elem, sendBuf, res, 0)
	} else {
		reduceChain(s, op, elem, sendBuf, res, 0)
	}
	bcastBinomial(s, res, 0)
}

// allreduceTwoLevel is the hierarchical algorithm: node-local ranks
// send their vectors to the node leader over shm, leaders reduce and
// exchange among themselves over the network (recursive doubling when
// the leader count is a power of two, gather+bcast through the first
// leader otherwise), and leaders broadcast the result back intra-node.
// Only the leader exchange crosses nodes: 2n net bytes on two nodes
// versus flat recursive doubling's 4n on the 4-rank reference layout.
func allreduceTwoLevel(s *Schedule, op coll.Op, elem *datatype.Type, sendBuf, recv []byte) {
	tp := computeTopo(s.t, -1)
	rank := s.t.Rank()
	n := len(sendBuf)
	res := recv[:n]
	if rank != tp.leader {
		s.addRound(round{comm: []step{sendTo(sendBuf, tp.leader)}})
		s.addRound(round{comm: []step{recvFrom(res, tp.leader)}})
		return
	}
	s.init(res, sendBuf)
	// Intra-node gather-reduce: one round, every local contribution.
	if len(tp.locals) > 0 {
		var recvs []step
		var folds []step
		for _, r := range tp.locals {
			tmp := make([]byte, n)
			recvs = append(recvs, recvFrom(tmp, r))
			folds = append(folds, reduceInto(op, elem, res, tmp))
		}
		s.addRound(round{comm: recvs, local: folds})
	}
	allreduceLeaderExchange(s, tp, op, elem, res, n)
	// Intra-node broadcast of the result.
	if len(tp.locals) > 0 {
		var sends []step
		for _, r := range tp.locals {
			sends = append(sends, sendTo(res, r))
		}
		s.addRound(round{comm: sends})
	}
}

// allreduceLeaderExchange emits the inter-node phase shared by the
// two-level allreduce variants: leaders exchange and fold their
// node-reduced vectors (recursive doubling when the leader count is a
// power of two, gather+bcast through the first leader otherwise).
// Non-leaders emit nothing.
func allreduceLeaderExchange(s *Schedule, tp topo, op coll.Op, elem *datatype.Type, res []byte, n int) {
	if s.t.Rank() != tp.leader {
		return
	}
	L := len(tp.leaders)
	if L <= 1 {
		return
	}
	if isPow2(L) {
		tmp := make([]byte, n)
		for m := 1; m < L; m *= 2 {
			peer := tp.leaders[tp.myIdx^m]
			s.addRound(round{
				comm:  []step{sendTo(res, peer), recvFrom(tmp, peer)},
				local: []step{reduceInto(op, elem, res, tmp)},
			})
		}
	} else if tp.myIdx == 0 {
		var recvs, folds []step
		for _, l := range tp.leaders[1:] {
			tmp := make([]byte, n)
			recvs = append(recvs, recvFrom(tmp, l))
			folds = append(folds, reduceInto(op, elem, res, tmp))
		}
		s.addRound(round{comm: recvs, local: folds})
		var sends []step
		for _, l := range tp.leaders[1:] {
			sends = append(sends, sendTo(res, l))
		}
		s.addRound(round{comm: sends})
	} else {
		s.addRound(round{comm: []step{sendTo(res, tp.leaders[0])}})
		s.addRound(round{comm: []step{recvFrom(res, tp.leaders[0])}})
	}
}

// allreduceTwoLevelZC is the zero-copy two-level allreduce for large
// payloads on handoff-capable transports. The intra-node phase is an
// in-place reduce-scatter over lent views: the payload is chunked
// element-aligned across the node's members, each member folds every
// peer's lent chunk directly into its slice of the result — no staging
// copies, no scratch vectors — then the node leader collects the
// reduced chunks, leaders run the usual inter-node exchange, and the
// result fans back out as one lent view per local rank. Compared to
// allreduceTwoLevel the leader folds k chunks of n/k bytes instead of
// k full vectors, and the k scratch buffers disappear.
func allreduceTwoLevelZC(s *Schedule, op coll.Op, elem *datatype.Type, sendBuf, recv []byte) {
	tp := computeTopo(s.t, -1)
	rank, size := s.t.Rank(), s.t.Size()
	n := len(sendBuf)
	res := recv[:n]

	// My node's member list, ascending — identical on every member, so
	// chunk ownership agrees without communication.
	myNode := s.t.Node(rank)
	var members []int
	myIdx := 0
	for r := 0; r < size; r++ {
		if s.t.Node(r) == myNode {
			if r == rank {
				myIdx = len(members)
			}
			members = append(members, r)
		}
	}
	k := len(members)
	es := elem.Size()
	total := n / es
	// chunk returns the byte range of the result owned by member j.
	chunk := func(j int) (int, int) {
		base, rem := total/k, total%k
		lo := j*base + min(j, rem)
		cnt := base
		if j < rem {
			cnt++
		}
		return lo * es, (lo + cnt) * es
	}

	// Round A — intra-node reduce-scatter in place. I seed my chunk
	// from my own contribution, lend every other member its chunk of
	// my sendBuf, and fold their lent chunks into mine as they land.
	mylo, myhi := chunk(myIdx)
	s.init(res[mylo:myhi], sendBuf[mylo:myhi])
	if k > 1 {
		var recvs, sends []step
		for j, m := range members {
			if m == rank {
				continue
			}
			if myhi > mylo {
				recvs = append(recvs, recvReduceFrom(op, elem, res[mylo:myhi], m))
			}
			lo, hi := chunk(j)
			if hi > lo {
				sends = append(sends, sendNoCopyTo(sendBuf[lo:hi], m))
			}
		}
		if len(recvs)+len(sends) > 0 {
			s.addRound(round{comm: append(recvs, sends...)})
		}
	}

	// Round B — leader collects the reduced chunks.
	if k > 1 {
		if rank == tp.leader {
			var recvs []step
			for j, m := range members {
				if m == rank {
					continue
				}
				lo, hi := chunk(j)
				if hi > lo {
					recvs = append(recvs, recvFrom(res[lo:hi], m))
				}
			}
			if len(recvs) > 0 {
				s.addRound(round{comm: recvs})
			}
		} else if myhi > mylo {
			s.addRound(round{comm: []step{sendNoCopyTo(res[mylo:myhi], tp.leader)}})
		}
	}

	// Round C — the usual inter-node leader exchange.
	allreduceLeaderExchange(s, tp, op, elem, res, n)

	// Round D — result fans back out, one lent view serving every
	// local receiver.
	if rank == tp.leader {
		if len(tp.locals) > 0 {
			var sends []step
			for _, r := range tp.locals {
				sends = append(sends, sendNoCopyTo(res, r))
			}
			s.addRound(round{comm: sends})
		}
	} else {
		s.addRound(round{comm: []step{recvFrom(res, tp.leader)}})
	}
}

// Allgather compiles an allgather with the given algorithm
// (metrics.CollAllgather*).
func Allgather(t Transport, tag int, sendBuf, recv []byte, algo int) (*Schedule, error) {
	size := t.Size()
	bs := len(sendBuf)
	if len(recv) < bs*size {
		return nil, fmt.Errorf("nbc: allgather recv buffer %d < %d", len(recv), bs*size)
	}
	s := newSchedule(t, tag, algo, bs)
	s.init(recv[t.Rank()*bs:(t.Rank()+1)*bs], sendBuf)
	if size == 1 {
		return s, nil
	}
	if algo == metrics.CollAllgatherBruck {
		allgatherBruck(s, bs, recv)
	} else {
		s.Algo = metrics.CollAllgatherRing
		allgatherRing(s, bs, recv)
	}
	return s, nil
}

// allgatherRing passes the newest block around the ring: P-1 rounds,
// each one send right + one receive left.
func allgatherRing(s *Schedule, bs int, recv []byte) {
	rank, size := s.t.Rank(), s.t.Size()
	right := (rank + 1) % size
	left := (rank - 1 + size) % size
	for st := 0; st < size-1; st++ {
		sb := (rank - st + size) % size
		rb := (rank - st - 1 + size) % size
		s.addRound(round{comm: []step{
			sendTo(recv[sb*bs:(sb+1)*bs], right),
			recvFrom(recv[rb*bs:(rb+1)*bs], left),
		}})
	}
}

// allgatherBruck doubles the gathered prefix each round in a rotated
// temporary, then unrotates locally in a final round.
func allgatherBruck(s *Schedule, bs int, recv []byte) {
	rank, size := s.t.Rank(), s.t.Size()
	tmp := make([]byte, bs*size)
	s.init(tmp[:bs], recv[rank*bs:(rank+1)*bs])
	have := 1
	for m := 1; m < size; m *= 2 {
		to := (rank - m + size) % size
		from := (rank + m) % size
		n := have
		if n > size-have {
			n = size - have
		}
		s.addRound(round{comm: []step{
			sendTo(tmp[:n*bs], to),
			recvFrom(tmp[have*bs:(have+n)*bs], from),
		}})
		have += n
	}
	var unrot []step
	for i := 0; i < size; i++ {
		dst := (rank + i) % size
		unrot = append(unrot, copyInto(recv[dst*bs:(dst+1)*bs], tmp[i*bs:(i+1)*bs]))
	}
	s.addRound(round{local: unrot})
}

// Alltoall compiles an all-to-all exchange with the given algorithm
// (metrics.CollAlltoall*).
func Alltoall(t Transport, tag int, sendBuf, recv []byte, algo int) (*Schedule, error) {
	size := t.Size()
	if size == 0 || len(sendBuf)%size != 0 {
		return nil, fmt.Errorf("nbc: alltoall send buffer %d not divisible by %d", len(sendBuf), size)
	}
	bs := len(sendBuf) / size
	if len(recv) < bs*size {
		return nil, fmt.Errorf("nbc: alltoall recv buffer %d < %d", len(recv), bs*size)
	}
	s := newSchedule(t, tag, algo, bs*size)
	rank := t.Rank()
	s.init(recv[rank*bs:(rank+1)*bs], sendBuf[rank*bs:(rank+1)*bs])
	if size == 1 {
		return s, nil
	}
	if algo == metrics.CollAlltoallPosted {
		var comms []step
		for off := 1; off < size; off++ {
			peer := (rank + off) % size
			comms = append(comms, sendTo(sendBuf[peer*bs:(peer+1)*bs], peer))
		}
		for off := 1; off < size; off++ {
			peer := (rank - off + size) % size
			comms = append(comms, recvFrom(recv[peer*bs:(peer+1)*bs], peer))
		}
		s.addRound(round{comm: comms})
		return s, nil
	}
	s.Algo = metrics.CollAlltoallPairwise
	if isPow2(size) {
		for st := 1; st < size; st++ {
			peer := rank ^ st
			s.addRound(round{comm: []step{
				sendTo(sendBuf[peer*bs:(peer+1)*bs], peer),
				recvFrom(recv[peer*bs:(peer+1)*bs], peer),
			}})
		}
	} else {
		for st := 1; st < size; st++ {
			to := (rank + st) % size
			from := (rank - st + size) % size
			s.addRound(round{comm: []step{
				sendTo(sendBuf[to*bs:(to+1)*bs], to),
				recvFrom(recv[from*bs:(from+1)*bs], from),
			}})
		}
	}
	return s, nil
}
