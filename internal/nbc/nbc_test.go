package nbc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"gompi/internal/coll"
	"gompi/internal/datatype"
	"gompi/internal/metrics"
)

// fakeNet is an in-memory transport: one deep FIFO channel per
// (src,dst) pair, so sends never block (eager contract) and same-tag
// traffic matches in order (the engine's FIFO assumption).
type fakeNet struct {
	size, rpn, eager int
	q                [][]chan fakeMsg
	sent             []int64 // messages injected per source rank
}

type fakeMsg struct {
	tag  int
	data []byte
}

func newFakeNet(size, rpn, eager int) *fakeNet {
	n := &fakeNet{size: size, rpn: rpn, eager: eager, sent: make([]int64, size)}
	n.q = make([][]chan fakeMsg, size)
	for s := range n.q {
		n.q[s] = make([]chan fakeMsg, size)
		for d := range n.q[s] {
			n.q[s][d] = make(chan fakeMsg, 4096)
		}
	}
	return n
}

func (n *fakeNet) rankView(r int) *fakeRank { return &fakeRank{net: n, rank: r} }

type fakeRank struct {
	net  *fakeNet
	rank int
}

func (f *fakeRank) Rank() int       { return f.rank }
func (f *fakeRank) Size() int       { return f.net.size }
func (f *fakeRank) EagerLimit() int { return f.net.eager }

func (f *fakeRank) Node(rank int) int {
	if f.net.rpn <= 0 {
		return 0
	}
	return rank / f.net.rpn
}

func (f *fakeRank) Send(data []byte, dest, tag int) error {
	if dest < 0 || dest >= f.net.size {
		return fmt.Errorf("send to bad rank %d", dest)
	}
	cp := append([]byte(nil), data...)
	select {
	case f.net.q[f.rank][dest] <- fakeMsg{tag: tag, data: cp}:
		f.net.sent[f.rank]++
		return nil
	default:
		return fmt.Errorf("fake transport queue full (%d->%d)", f.rank, dest)
	}
}

type fakePending struct {
	ch  chan fakeMsg
	buf []byte
	tag int
	got bool
}

func (p *fakePending) deliver(m fakeMsg) (bool, error) {
	if m.tag != p.tag {
		return true, fmt.Errorf("tag mismatch: got %d want %d", m.tag, p.tag)
	}
	if len(m.data) != len(p.buf) {
		return true, fmt.Errorf("length mismatch: got %d want %d", len(m.data), len(p.buf))
	}
	copy(p.buf, m.data)
	p.got = true
	return true, nil
}

func (p *fakePending) Done() (bool, error) {
	if p.got {
		return true, nil
	}
	select {
	case m := <-p.ch:
		return p.deliver(m)
	default:
		return false, nil
	}
}

func (p *fakePending) Wait() error {
	if p.got {
		return nil
	}
	m := <-p.ch
	_, err := p.deliver(m)
	return err
}

func (f *fakeRank) Recv(buf []byte, src, tag int) (Pending, error) {
	if src < 0 || src >= f.net.size {
		return nil, fmt.Errorf("recv from bad rank %d", src)
	}
	return &fakePending{ch: f.net.q[src][f.rank], buf: buf, tag: tag}, nil
}

// runRanks executes fn once per rank concurrently and fails the test
// on the first error.
func runRanks(t *testing.T, net *fakeNet, fn func(tr Transport, rank int) error) {
	t.Helper()
	errs := make([]error, net.size)
	var wg sync.WaitGroup
	for r := 0; r < net.size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(net.rankView(r), r)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func longs(vs ...int64) []byte {
	out := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(v))
	}
	return out
}

func pattern(rank, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rank*131 + i)
	}
	return out
}

func TestBarrier(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 8} {
		net := newFakeNet(size, 1, 0)
		runRanks(t, net, func(tr Transport, rank int) error {
			return Barrier(tr, 7).Wait()
		})
	}
}

func TestBcastAlgorithms(t *testing.T) {
	algos := []int{
		metrics.CollBcastBinomial,
		metrics.CollBcastScatterAllgather,
		metrics.CollBcastTwoLevel,
	}
	for _, algo := range algos {
		for _, size := range []int{1, 2, 3, 4, 5, 8} {
			for _, root := range []int{0, size - 1} {
				for _, n := range []int{17, 3000} {
					name := fmt.Sprintf("%s/p%d/root%d/n%d", metrics.CollAlgoNames[algo], size, root, n)
					want := pattern(root, n)
					net := newFakeNet(size, 2, 256)
					runRanks(t, net, func(tr Transport, rank int) error {
						buf := make([]byte, n)
						if rank == root {
							copy(buf, want)
						}
						s, err := Bcast(tr, 9, buf, root, algo)
						if err != nil {
							return err
						}
						if err := s.Wait(); err != nil {
							return err
						}
						if !bytes.Equal(buf, want) {
							return fmt.Errorf("%s: wrong payload", name)
						}
						return nil
					})
				}
			}
		}
	}
}

func TestReduceAlgorithms(t *testing.T) {
	for _, algo := range []int{metrics.CollReduceBinomial, metrics.CollReduceChain} {
		for _, size := range []int{1, 2, 3, 4, 5, 8} {
			for _, root := range []int{0, size - 1} {
				var wantSum int64
				for r := 0; r < size; r++ {
					wantSum += int64(r + 1)
				}
				net := newFakeNet(size, 1, 0)
				runRanks(t, net, func(tr Transport, rank int) error {
					contrib := longs(int64(rank+1), int64(10*(rank+1)))
					recv := make([]byte, len(contrib))
					s, err := Reduce(tr, 11, coll.OpSum, datatype.Long, contrib, recv, root, algo)
					if err != nil {
						return err
					}
					if err := s.Wait(); err != nil {
						return err
					}
					if rank == root && !bytes.Equal(recv, longs(wantSum, 10*wantSum)) {
						return fmt.Errorf("algo %d p%d root %d: wrong sum", algo, size, root)
					}
					return nil
				})
			}
		}
	}
}

// TestReduceNonCommutative pins the satellite regression: a
// subtraction operator (non-commutative, left-associative) must fold
// in strict rank order. With contributions 1,2,4,8,... the chain
// yields v0-v1-...-v{P-1}; the binomial tree would pair ranks and
// produce a different (wrong) value for P >= 4.
func TestReduceNonCommutative(t *testing.T) {
	sub := coll.CreateOp(func(in, inout []byte, count int, elem *datatype.Type) error {
		// Chain order: inout holds the later-ranks partial (the
		// accumulated suffix), in is this rank's value; the fold at
		// rank r computes v_r - suffix.
		for i := 0; i < count; i++ {
			a := int64(binary.LittleEndian.Uint64(in[8*i:]))
			b := int64(binary.LittleEndian.Uint64(inout[8*i:]))
			binary.LittleEndian.PutUint64(inout[8*i:], uint64(a-b))
		}
		return nil
	}, false)
	if coll.Commutative(sub) {
		t.Fatal("subtraction registered as commutative")
	}

	const size = 4
	// v_r = 2^r: chain = 1-(2-(4-8)) = 1-(2-(-4)) = 1-6 = -5.
	const want = -5
	net := newFakeNet(size, 1, 0)
	runRanks(t, net, func(tr Transport, rank int) error {
		contrib := longs(int64(1) << uint(rank))
		recv := make([]byte, 8)
		// Request the binomial algorithm: Reduce must override it to
		// the chain because the op is non-commutative.
		s, err := Reduce(tr, 13, sub, datatype.Long, contrib, recv, 0, metrics.CollReduceBinomial)
		if err != nil {
			return err
		}
		if s.Algo != metrics.CollReduceChain {
			return fmt.Errorf("non-commutative op not forced onto chain (algo %d)", s.Algo)
		}
		if err := s.Wait(); err != nil {
			return err
		}
		if rank == 0 {
			if got := int64(binary.LittleEndian.Uint64(recv)); got != want {
				return fmt.Errorf("rank-ordered subtraction: got %d want %d", got, want)
			}
		}
		return nil
	})
}

func TestAllreduceAlgorithms(t *testing.T) {
	algos := []int{
		metrics.CollAllreduceRecDoubling,
		metrics.CollAllreduceRedScatGather,
		metrics.CollAllreduceTwoLevel,
		metrics.CollAllreduceReduceBcast,
	}
	for _, algo := range algos {
		for _, size := range []int{1, 2, 3, 4, 5, 8} {
			// 8 elements: divisible by every pow2 size here, so RSAG
			// runs for real on 2/4/8 and falls back elsewhere. 12
			// elements gives non-power-of-two per-rank counts (3 on 4
			// ranks, 6 on 2) so the RSAG retrace can't rely on
			// size-aligned block offsets.
			for _, elems := range []int{8, 12} {
				var want []int64
				for e := 0; e < elems; e++ {
					var sum int64
					for r := 0; r < size; r++ {
						sum += int64(r*10 + e)
					}
					want = append(want, sum)
				}
				wantB := longs(want...)
				net := newFakeNet(size, 2, 0)
				runRanks(t, net, func(tr Transport, rank int) error {
					var vals []int64
					for e := 0; e < elems; e++ {
						vals = append(vals, int64(rank*10+e))
					}
					contrib := longs(vals...)
					recv := make([]byte, len(contrib))
					s, err := Allreduce(tr, 15, coll.OpSum, datatype.Long, contrib, recv, algo)
					if err != nil {
						return err
					}
					if err := s.Wait(); err != nil {
						return err
					}
					if !bytes.Equal(recv, wantB) {
						return fmt.Errorf("algo %d p%d n%d: wrong result", algo, size, elems)
					}
					return nil
				})
			}
		}
	}
}

func TestAllgatherAlgorithms(t *testing.T) {
	for _, algo := range []int{metrics.CollAllgatherRing, metrics.CollAllgatherBruck} {
		for _, size := range []int{1, 2, 3, 4, 5, 8} {
			const bs = 24
			var want []byte
			for r := 0; r < size; r++ {
				want = append(want, pattern(r, bs)...)
			}
			net := newFakeNet(size, 1, 0)
			runRanks(t, net, func(tr Transport, rank int) error {
				recv := make([]byte, bs*size)
				s, err := Allgather(tr, 17, pattern(rank, bs), recv, algo)
				if err != nil {
					return err
				}
				if err := s.Wait(); err != nil {
					return err
				}
				if !bytes.Equal(recv, want) {
					return fmt.Errorf("algo %d p%d: wrong result", algo, size)
				}
				return nil
			})
		}
	}
}

func TestAlltoallAlgorithms(t *testing.T) {
	for _, algo := range []int{metrics.CollAlltoallPairwise, metrics.CollAlltoallPosted} {
		for _, size := range []int{1, 2, 3, 4, 5, 8} {
			const bs = 16
			net := newFakeNet(size, 1, 0)
			runRanks(t, net, func(tr Transport, rank int) error {
				send := make([]byte, bs*size)
				for d := 0; d < size; d++ {
					copy(send[d*bs:], pattern(rank*100+d, bs))
				}
				recv := make([]byte, bs*size)
				s, err := Alltoall(tr, 19, send, recv, algo)
				if err != nil {
					return err
				}
				if err := s.Wait(); err != nil {
					return err
				}
				for srcRank := 0; srcRank < size; srcRank++ {
					want := pattern(srcRank*100+rank, bs)
					if !bytes.Equal(recv[srcRank*bs:(srcRank+1)*bs], want) {
						return fmt.Errorf("algo %d p%d: wrong block from %d", algo, size, srcRank)
					}
				}
				return nil
			})
		}
	}
}

// TestSegmentation forces an eager limit far below the payload and
// checks both that the result reassembles correctly and that no
// injected message exceeded the limit.
func TestSegmentation(t *testing.T) {
	const size, n, eager = 4, 1000, 64
	want := pattern(2, n)
	net := newFakeNet(size, 1, eager)
	runRanks(t, net, func(tr Transport, rank int) error {
		buf := make([]byte, n)
		if rank == 2 {
			copy(buf, want)
		}
		s, err := Bcast(tr, 21, buf, 2, metrics.CollBcastBinomial)
		if err != nil {
			return err
		}
		if err := s.Wait(); err != nil {
			return err
		}
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("segmented bcast corrupted payload")
		}
		return nil
	})
	// Every fragment must fit the eager limit (queues are drained, but
	// sends were counted): ceil(1000/64) = 16 fragments per hop, and a
	// binomial bcast on 4 ranks has 3 hops.
	var total int64
	for _, c := range net.sent {
		total += c
	}
	if wantMsgs := int64(3 * 16); total != wantMsgs {
		t.Fatalf("segmentation: %d messages injected, want %d", total, wantMsgs)
	}
}

// TestPollingProgress drives a schedule only through Test (the
// MPI_Test path) — no blocking waits anywhere.
func TestPollingProgress(t *testing.T) {
	const size = 4
	net := newFakeNet(size, 1, 0)
	runRanks(t, net, func(tr Transport, rank int) error {
		contrib := longs(int64(rank + 1))
		recv := make([]byte, 8)
		s, err := Allreduce(tr, 23, coll.OpSum, datatype.Long, contrib, recv, metrics.CollAllreduceRecDoubling)
		if err != nil {
			return err
		}
		for {
			done, err := s.Test()
			if err != nil {
				return err
			}
			if done {
				break
			}
			runtime.Gosched()
		}
		if got := int64(binary.LittleEndian.Uint64(recv)); got != 10 {
			return fmt.Errorf("got %d want 10", got)
		}
		return nil
	})
}

func TestTwoLevelDetection(t *testing.T) {
	if TwoLevel(newFakeNet(4, 1, 0).rankView(0)) {
		t.Error("rpn=1 (all ranks on distinct nodes) reported two-level")
	}
	if TwoLevel(newFakeNet(4, 4, 0).rankView(0)) {
		t.Error("single node reported two-level")
	}
	if !TwoLevel(newFakeNet(4, 2, 0).rankView(0)) {
		t.Error("4 ranks on 2 nodes not reported two-level")
	}
}

func TestSelection(t *testing.T) {
	flat := newFakeNet(8, 1, 0).rankView(0)
	hier := newFakeNet(8, 2, 0).rankView(0)

	if got := SelectBcast(flat, 64, ForceAuto); got != metrics.CollBcastBinomial {
		t.Errorf("small flat bcast: %s", metrics.CollAlgoNames[got])
	}
	if got := SelectBcast(flat, 1<<20, ForceAuto); got != metrics.CollBcastScatterAllgather {
		t.Errorf("large flat bcast: %s", metrics.CollAlgoNames[got])
	}
	if got := SelectBcast(hier, 64, ForceAuto); got != metrics.CollBcastTwoLevel {
		t.Errorf("hierarchical bcast: %s", metrics.CollAlgoNames[got])
	}
	if got := SelectBcast(hier, 64, ForceFlat); got != metrics.CollBcastBinomial {
		t.Errorf("forced-flat bcast: %s", metrics.CollAlgoNames[got])
	}

	if got := SelectAllreduce(flat, 8, 8, true, ForceAuto); got != metrics.CollAllreduceRecDoubling {
		t.Errorf("small pow2 allreduce: %s", metrics.CollAlgoNames[got])
	}
	if got := SelectAllreduce(flat, 1<<16, 8, true, ForceAuto); got != metrics.CollAllreduceRedScatGather {
		t.Errorf("large pow2 allreduce: %s", metrics.CollAlgoNames[got])
	}
	if got := SelectAllreduce(hier, 8, 8, true, ForceAuto); got != metrics.CollAllreduceTwoLevel {
		t.Errorf("hierarchical allreduce: %s", metrics.CollAlgoNames[got])
	}
	if got := SelectAllreduce(flat, 8, 8, false, ForceAuto); got != metrics.CollAllreduceReduceBcast {
		t.Errorf("non-commutative allreduce: %s", metrics.CollAlgoNames[got])
	}
	nonPow2 := newFakeNet(6, 1, 0).rankView(0)
	if got := SelectAllreduce(nonPow2, 8, 8, true, ForceAuto); got != metrics.CollAllreduceReduceBcast {
		t.Errorf("non-pow2 allreduce: %s", metrics.CollAlgoNames[got])
	}

	if got := SelectAllgather(flat, 256, ForceAuto); got != metrics.CollAllgatherBruck {
		t.Errorf("small allgather: %s", metrics.CollAlgoNames[got])
	}
	if got := SelectAllgather(flat, 1<<16, ForceAuto); got != metrics.CollAllgatherRing {
		t.Errorf("large allgather: %s", metrics.CollAlgoNames[got])
	}
	if got := SelectAlltoall(flat, 256, ForceAuto); got != metrics.CollAlltoallPosted {
		t.Errorf("small alltoall: %s", metrics.CollAlgoNames[got])
	}
	if got := SelectAlltoall(flat, 1<<16, ForceAuto); got != metrics.CollAlltoallPairwise {
		t.Errorf("large alltoall: %s", metrics.CollAlgoNames[got])
	}

	if _, err := ParseForce("no-such-algo"); err == nil {
		t.Error("ParseForce accepted junk")
	}
	if f, err := ParseForce("two-level"); err != nil || f != ForceTwoLevel {
		t.Errorf("ParseForce(two-level) = %v, %v", f, err)
	}
}
