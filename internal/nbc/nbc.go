// Package nbc is the nonblocking-collectives engine: each collective
// compiles into a Schedule — a DAG of primitive steps (eager send,
// nonblocking recv, local reduce, local copy) organized in dependency
// rounds — and the schedule is progressed incrementally off the request
// engine, so an I-collective returns immediately and genuinely overlaps
// with user computation.
//
// The round structure encodes the DAG: every communication step of
// round k is issued as soon as round k-1 completes, every local step of
// round k runs once all of round k's receives have landed, and steps
// within a round are independent. Sends are eager (the transport copies
// the payload at injection and never blocks), so a schedule can never
// deadlock as long as its receive dependencies are acyclic — which each
// compiler here guarantees by construction. Payloads larger than the
// transport's eager limit are segmented into eager-sized fragments
// (same tag, FIFO-matched in order), so schedules never enter the
// rendezvous protocol.
//
// One tag isolates one schedule instance: the MPI layer allocates a
// fresh tag per collective call from a per-communicator sequence, so
// several collectives may be outstanding on one communicator at once,
// and a rank that runs ahead into round k+1 cannot confuse a peer still
// matching round k (same-tag traffic matches FIFO).
package nbc

import (
	"fmt"
	"runtime"

	"gompi/internal/coll"
	"gompi/internal/datatype"
)

// Pending is one outstanding nonblocking receive. Done must be
// non-blocking (pumping transport progress is allowed); Wait parks
// until the message lands. After either reports completion the Pending
// is dead — the engine never calls into it again.
type Pending interface {
	Done() (bool, error)
	Wait() error
}

// Transport is what a schedule runs over: the eager matched send /
// nonblocking matched receive pair of the device's collective context,
// plus the topology and protocol facts the compiler and the segmenter
// need.
type Transport interface {
	Rank() int
	Size() int
	// Send transmits data to dest with the given tag, eagerly: the
	// payload is captured at injection and the call never blocks.
	Send(data []byte, dest, tag int) error
	// Recv posts a nonblocking matched receive and returns its handle.
	Recv(buf []byte, src, tag int) (Pending, error)
	// Node maps a communicator rank to its node id (two-level
	// algorithms exchange through one leader per node).
	Node(rank int) int
	// EagerLimit is the eager/rendezvous threshold in bytes; 0 means
	// unlimited eager. Sends above it are segmented.
	EagerLimit() int
}

// BlockTopo is an optional Transport extension for transports whose
// rank→node mapping is the contiguous block mapping: communicator rank
// r lives on node r/rpn (rank 0 at a node boundary). The two-level
// compilers then derive the node structure arithmetically in
// O(nodes + rpn) instead of an O(size) scan with a per-call map — the
// difference between a 10K-rank allreduce compiling in microseconds
// and burning 100M map operations per call.
type BlockTopo interface {
	// RanksPerNodeBlock returns (rpn, true) when the block mapping
	// holds, (0, false) otherwise (irregular subcommunicators).
	RanksPerNodeBlock() (int, bool)
}

// TopoCache is an optional Transport extension: a transport backed by
// a long-lived communicator can memoize the derived node structure per
// prefer-rank, so repeated collectives skip even the fast derivation.
// Keys are the prefer argument; values are opaque to the transport.
type TopoCache interface {
	LoadTopo(prefer int) (any, bool)
	StoreTopo(prefer int, v any)
}

// HandoffTransport is the optional zero-copy extension a transport may
// implement (the ch4 device does when Config.ShmEagerMax is set): large
// on-node payloads are lent to the receiver instead of copied through
// staging cells. The engine type-asserts for it, so the core Transport
// interface — and every fake implementing it — is untouched.
type HandoffTransport interface {
	// SendNoCopy lends data to dest over the zero-copy handoff path.
	// ok=false means the path does not apply (off-node peer, payload
	// under the threshold, handoff disabled) and nothing was sent —
	// the caller falls back to ordinary eager sends. On ok=true the
	// returned Pending completes when the receiver has released the
	// buffer; data must stay untouched until then, so schedules gate
	// the round on it like a receive. A nil Pending with ok=true means
	// the transport staged after all and the buffer is already free.
	SendNoCopy(data []byte, dest, tag int) (Pending, bool, error)
	// HandoffEager is the zero-copy threshold in bytes (0 = handoff
	// unavailable); the algorithm selection keys off it.
	HandoffEager() int
}

// ReduceTransport is the optional in-place reduction extension: the
// receive consumes its payload by folding it into acc element-wise
// instead of copying. Over a zero-copy handoff view the payload is
// reduced where the sender left it — zero copies end to end.
type ReduceTransport interface {
	RecvReduce(acc []byte, op coll.Op, elem *datatype.Type, src, tag int) (Pending, error)
}

// Segmenter is the optional per-peer refinement of EagerLimit: a
// transport that knows a peer is reachable without the rendezvous
// protocol (on-node shm with handoff enabled) returns 0 for it, so
// both sides skip segmentation and large payloads stay whole — which
// is what lets them ride the handoff path. Senders and receivers
// derive the same cuts because SegLimit is symmetric in the pair.
type Segmenter interface {
	SegLimit(peer int) int
}

// stepKind enumerates the primitive operations a schedule is built of.
type stepKind uint8

const (
	opSend stepKind = iota
	opRecv
	opReduce     // dst = src OP dst (coll.Apply operand order)
	opCopy       // copy(dst, src)
	opRecvReduce // fold the incoming payload into dst in place
)

// step is one primitive. Send/recv use peer+buf; reduce/copy use
// dst/src (reduce also op+elem); recv-reduce uses peer+dst+op+elem.
// noCopy marks a send whose buffer may be lent over the zero-copy
// handoff path when the transport offers one.
type step struct {
	kind     stepKind
	peer     int
	noCopy   bool
	buf      []byte
	dst, src []byte
	op       coll.Op
	elem     *datatype.Type
}

// round is one dependency level: comm steps are issued together when
// the round starts, local steps run in order once every receive of the
// round has landed.
type round struct {
	comm  []step
	local []step
}

// Schedule is one compiled collective instance. It is owned by the
// rank that built it; Test and Wait must be called from that rank's
// goroutine (they run local reduction steps and post receives).
type Schedule struct {
	// Algo is the metrics algorithm id the selection chose.
	Algo int
	// Bytes is the per-rank payload size, for metrics and tracing.
	Bytes int

	// OnRound, when set, fires at each round boundary on the owning
	// goroutine: (idx, true) as round idx's communication is issued,
	// (idx, false) as its local steps finish. The MPI layer hangs the
	// Chrome-trace round spans off it.
	OnRound func(idx int, start bool)

	t       Transport
	tag     int
	rounds  []round
	cur     int
	issued  bool
	pending []Pending
	done    bool
	err     error

	// prologue records the compile-time buffer initializations (the
	// seed copies compilers perform while building the rounds) so Reset
	// can re-run them: a cached schedule replays from the caller's
	// current buffer contents instead of a stale snapshot.
	prologue []step
}

// newSchedule wires an empty schedule.
func newSchedule(t Transport, tag, algo, bytes int) *Schedule {
	return &Schedule{t: t, tag: tag, Algo: algo, Bytes: bytes}
}

// addRound appends a dependency round.
func (s *Schedule) addRound(r round) {
	if len(r.comm) == 0 && len(r.local) == 0 {
		return
	}
	s.rounds = append(s.rounds, r)
}

// Rounds reports the schedule's depth (tests and tooling).
func (s *Schedule) Rounds() int { return len(s.rounds) }

// Running reports whether the schedule has issued traffic it has not
// yet completed: it is neither freshly compiled nor finished. A running
// schedule must not be Reset (its in-flight receives would orphan), so
// the schedule cache refuses to hand one out.
func (s *Schedule) Running() bool {
	return !s.done && (s.issued || s.cur > 0 || len(s.pending) > 0)
}

// Reset rewinds a completed (or never-started) schedule for replay
// under the given tag: the compiled round structure — the expensive
// part — is kept verbatim, only the progress cursor is cleared. The
// pending slice keeps its capacity, so a replayed schedule issues with
// zero allocations once warm. Resetting a Running schedule is a
// programming error; callers gate on Running first.
func (s *Schedule) Reset(tag int) {
	s.tag = tag
	s.cur = 0
	s.issued = false
	s.done = false
	s.err = nil
	s.pending = s.pending[:0]
	// Re-seed working buffers from the caller's current payload: the
	// compilers' initialization copies ran once at compile time, and a
	// replay must not fold into stale accumulator contents.
	for _, st := range s.prologue {
		copy(st.dst, st.src)
	}
}

// init copies src into dst immediately (the compiler needs the seed in
// place while building later rounds) and records the copy in the
// schedule's prologue so Reset can re-run it before a replay.
func (s *Schedule) init(dst, src []byte) {
	copy(dst, src)
	s.prologue = append(s.prologue, copyInto(dst, src))
}

// Cur reports the index of the round currently in progress (equal to
// Rounds once the schedule has finished).
func (s *Schedule) Cur() int { return s.cur }

// fail latches the first error and finishes the schedule: a transport
// error is not recoverable mid-collective.
func (s *Schedule) fail(err error) error {
	if s.err == nil {
		s.err = err
	}
	s.done = true
	return s.err
}

// segLimit is the fragment limit toward one peer: the transport's
// per-peer refinement when it offers one, the flat eager limit
// otherwise. Both endpoints of a pair compute the same value, so
// fragments pair up by FIFO order.
func (s *Schedule) segLimit(peer int) int {
	if sg, ok := s.t.(Segmenter); ok {
		return sg.SegLimit(peer)
	}
	return s.t.EagerLimit()
}

// segments returns the fragment boundaries of an n-byte payload toward
// peer: [0, n] for an eager-sized payload, ceil(n/limit) cuts
// otherwise.
func (s *Schedule) segments(n, peer int) int {
	lim := s.segLimit(peer)
	if lim <= 0 || n <= lim {
		return 1
	}
	return (n + lim - 1) / lim
}

// issueSend injects one send step, segmenting above the eager limit. A
// noCopy step first offers the payload to the transport's zero-copy
// handoff; when accepted, the returned completion gates the round like
// a receive (the buffer is lent until the receiver releases it).
func (s *Schedule) issueSend(st step) error {
	if st.noCopy {
		if ht, ok := s.t.(HandoffTransport); ok {
			p, sent, err := ht.SendNoCopy(st.buf, st.peer, s.tag)
			if err != nil {
				return err
			}
			if sent {
				if p != nil {
					s.pending = append(s.pending, p)
				}
				return nil
			}
		}
	}
	lim := s.segLimit(st.peer)
	if lim <= 0 || len(st.buf) <= lim {
		return s.t.Send(st.buf, st.peer, s.tag)
	}
	for off := 0; off < len(st.buf); off += lim {
		end := off + lim
		if end > len(st.buf) {
			end = len(st.buf)
		}
		if err := s.t.Send(st.buf[off:end], st.peer, s.tag); err != nil {
			return err
		}
	}
	return nil
}

// issueRecv posts one receive step, segmenting above the eager limit,
// and appends the resulting Pendings.
func (s *Schedule) issueRecv(st step) error {
	lim := s.segLimit(st.peer)
	if lim <= 0 || len(st.buf) <= lim {
		p, err := s.t.Recv(st.buf, st.peer, s.tag)
		if err != nil {
			return err
		}
		s.pending = append(s.pending, p)
		return nil
	}
	for off := 0; off < len(st.buf); off += lim {
		end := off + lim
		if end > len(st.buf) {
			end = len(st.buf)
		}
		p, err := s.t.Recv(st.buf[off:end], st.peer, s.tag)
		if err != nil {
			return err
		}
		s.pending = append(s.pending, p)
	}
	return nil
}

// issueRecvReduce posts one in-place receive-reduce step. Compilers
// emit these only toward unsegmented peers (SegLimit 0), so the whole
// payload arrives as one message and folds once.
func (s *Schedule) issueRecvReduce(st step) error {
	rt, ok := s.t.(ReduceTransport)
	if !ok {
		return fmt.Errorf("nbc: schedule uses recv-reduce but transport lacks it")
	}
	p, err := rt.RecvReduce(st.dst, st.op, st.elem, st.peer, s.tag)
	if err != nil {
		return err
	}
	s.pending = append(s.pending, p)
	return nil
}

// startRound issues the current round's communication: sends inject
// immediately (eager), receives post and become pending.
func (s *Schedule) startRound() error {
	if s.OnRound != nil {
		s.OnRound(s.cur, true)
	}
	for _, st := range s.rounds[s.cur].comm {
		var err error
		switch st.kind {
		case opSend:
			err = s.issueSend(st)
		case opRecv:
			err = s.issueRecv(st)
		case opRecvReduce:
			err = s.issueRecvReduce(st)
		default:
			err = fmt.Errorf("nbc: local step in comm list")
		}
		if err != nil {
			return err
		}
	}
	s.issued = true
	return nil
}

// finishRound runs the current round's local steps and advances.
func (s *Schedule) finishRound() error {
	for _, st := range s.rounds[s.cur].local {
		switch st.kind {
		case opReduce:
			if err := coll.Apply(st.op, st.elem, st.dst, st.src); err != nil {
				return err
			}
		case opCopy:
			copy(st.dst, st.src)
		default:
			return fmt.Errorf("nbc: comm step in local list")
		}
	}
	if s.OnRound != nil {
		s.OnRound(s.cur, false)
	}
	s.cur++
	s.issued = false
	s.pending = s.pending[:0]
	return nil
}

// Test makes non-blocking progress: it issues any ready round, polls
// the outstanding receives, and runs local steps as rounds complete.
// It returns true once the whole schedule has finished (possibly with
// the schedule's first error).
func (s *Schedule) Test() (bool, error) {
	for {
		if s.done {
			return true, s.err
		}
		if s.cur >= len(s.rounds) {
			s.done = true
			return true, s.err
		}
		if !s.issued {
			if err := s.startRound(); err != nil {
				return true, s.fail(err)
			}
		}
		for i, p := range s.pending {
			if p == nil {
				continue
			}
			ok, err := p.Done()
			if err != nil {
				return true, s.fail(err)
			}
			if !ok {
				// Yield before reporting "not yet": ranks are
				// goroutines, and a rank spinning Test on an
				// oversubscribed machine would otherwise starve the
				// peers whose sends it is waiting for.
				runtime.Gosched()
				return false, nil
			}
			s.pending[i] = nil
		}
		if err := s.finishRound(); err != nil {
			return true, s.fail(err)
		}
	}
}

// Wait drives the schedule to completion, parking on each outstanding
// receive in turn. Deadlock-free: sends are eager and every compiler
// emits acyclic receive dependencies.
func (s *Schedule) Wait() error {
	for {
		if s.done {
			return s.err
		}
		if s.cur >= len(s.rounds) {
			s.done = true
			return s.err
		}
		if !s.issued {
			if err := s.startRound(); err != nil {
				return s.fail(err)
			}
		}
		for i, p := range s.pending {
			if p == nil {
				continue
			}
			if err := p.Wait(); err != nil {
				return s.fail(err)
			}
			s.pending[i] = nil
		}
		if err := s.finishRound(); err != nil {
			return s.fail(err)
		}
	}
}
