// Package nbc is the nonblocking-collectives engine: each collective
// compiles into a Schedule — a DAG of primitive steps (eager send,
// nonblocking recv, local reduce, local copy) organized in dependency
// rounds — and the schedule is progressed incrementally off the request
// engine, so an I-collective returns immediately and genuinely overlaps
// with user computation.
//
// The round structure encodes the DAG: every communication step of
// round k is issued as soon as round k-1 completes, every local step of
// round k runs once all of round k's receives have landed, and steps
// within a round are independent. Sends are eager (the transport copies
// the payload at injection and never blocks), so a schedule can never
// deadlock as long as its receive dependencies are acyclic — which each
// compiler here guarantees by construction. Payloads larger than the
// transport's eager limit are segmented into eager-sized fragments
// (same tag, FIFO-matched in order), so schedules never enter the
// rendezvous protocol.
//
// One tag isolates one schedule instance: the MPI layer allocates a
// fresh tag per collective call from a per-communicator sequence, so
// several collectives may be outstanding on one communicator at once,
// and a rank that runs ahead into round k+1 cannot confuse a peer still
// matching round k (same-tag traffic matches FIFO).
package nbc

import (
	"fmt"
	"runtime"

	"gompi/internal/coll"
	"gompi/internal/datatype"
)

// Pending is one outstanding nonblocking receive. Done must be
// non-blocking (pumping transport progress is allowed); Wait parks
// until the message lands. After either reports completion the Pending
// is dead — the engine never calls into it again.
type Pending interface {
	Done() (bool, error)
	Wait() error
}

// Transport is what a schedule runs over: the eager matched send /
// nonblocking matched receive pair of the device's collective context,
// plus the topology and protocol facts the compiler and the segmenter
// need.
type Transport interface {
	Rank() int
	Size() int
	// Send transmits data to dest with the given tag, eagerly: the
	// payload is captured at injection and the call never blocks.
	Send(data []byte, dest, tag int) error
	// Recv posts a nonblocking matched receive and returns its handle.
	Recv(buf []byte, src, tag int) (Pending, error)
	// Node maps a communicator rank to its node id (two-level
	// algorithms exchange through one leader per node).
	Node(rank int) int
	// EagerLimit is the eager/rendezvous threshold in bytes; 0 means
	// unlimited eager. Sends above it are segmented.
	EagerLimit() int
}

// stepKind enumerates the primitive operations a schedule is built of.
type stepKind uint8

const (
	opSend stepKind = iota
	opRecv
	opReduce // dst = src OP dst (coll.Apply operand order)
	opCopy   // copy(dst, src)
)

// step is one primitive. Send/recv use peer+buf; reduce/copy use
// dst/src (reduce also op+elem).
type step struct {
	kind     stepKind
	peer     int
	buf      []byte
	dst, src []byte
	op       coll.Op
	elem     *datatype.Type
}

// round is one dependency level: comm steps are issued together when
// the round starts, local steps run in order once every receive of the
// round has landed.
type round struct {
	comm  []step
	local []step
}

// Schedule is one compiled collective instance. It is owned by the
// rank that built it; Test and Wait must be called from that rank's
// goroutine (they run local reduction steps and post receives).
type Schedule struct {
	// Algo is the metrics algorithm id the selection chose.
	Algo int
	// Bytes is the per-rank payload size, for metrics and tracing.
	Bytes int

	// OnRound, when set, fires at each round boundary on the owning
	// goroutine: (idx, true) as round idx's communication is issued,
	// (idx, false) as its local steps finish. The MPI layer hangs the
	// Chrome-trace round spans off it.
	OnRound func(idx int, start bool)

	t       Transport
	tag     int
	rounds  []round
	cur     int
	issued  bool
	pending []Pending
	done    bool
	err     error
}

// newSchedule wires an empty schedule.
func newSchedule(t Transport, tag, algo, bytes int) *Schedule {
	return &Schedule{t: t, tag: tag, Algo: algo, Bytes: bytes}
}

// addRound appends a dependency round.
func (s *Schedule) addRound(r round) {
	if len(r.comm) == 0 && len(r.local) == 0 {
		return
	}
	s.rounds = append(s.rounds, r)
}

// Rounds reports the schedule's depth (tests and tooling).
func (s *Schedule) Rounds() int { return len(s.rounds) }

// Cur reports the index of the round currently in progress (equal to
// Rounds once the schedule has finished).
func (s *Schedule) Cur() int { return s.cur }

// fail latches the first error and finishes the schedule: a transport
// error is not recoverable mid-collective.
func (s *Schedule) fail(err error) error {
	if s.err == nil {
		s.err = err
	}
	s.done = true
	return s.err
}

// segments returns the fragment boundaries of an n-byte payload under
// the transport's eager limit: [0, n] for an eager-sized payload,
// ceil(n/limit) cuts otherwise. Both sides derive the same cuts from
// the same lengths, so fragments pair up by FIFO order.
func (s *Schedule) segments(n int) int {
	lim := s.t.EagerLimit()
	if lim <= 0 || n <= lim {
		return 1
	}
	return (n + lim - 1) / lim
}

// issueSend injects one send step, segmenting above the eager limit.
func (s *Schedule) issueSend(st step) error {
	lim := s.t.EagerLimit()
	if lim <= 0 || len(st.buf) <= lim {
		return s.t.Send(st.buf, st.peer, s.tag)
	}
	for off := 0; off < len(st.buf); off += lim {
		end := off + lim
		if end > len(st.buf) {
			end = len(st.buf)
		}
		if err := s.t.Send(st.buf[off:end], st.peer, s.tag); err != nil {
			return err
		}
	}
	return nil
}

// issueRecv posts one receive step, segmenting above the eager limit,
// and appends the resulting Pendings.
func (s *Schedule) issueRecv(st step) error {
	lim := s.t.EagerLimit()
	if lim <= 0 || len(st.buf) <= lim {
		p, err := s.t.Recv(st.buf, st.peer, s.tag)
		if err != nil {
			return err
		}
		s.pending = append(s.pending, p)
		return nil
	}
	for off := 0; off < len(st.buf); off += lim {
		end := off + lim
		if end > len(st.buf) {
			end = len(st.buf)
		}
		p, err := s.t.Recv(st.buf[off:end], st.peer, s.tag)
		if err != nil {
			return err
		}
		s.pending = append(s.pending, p)
	}
	return nil
}

// startRound issues the current round's communication: sends inject
// immediately (eager), receives post and become pending.
func (s *Schedule) startRound() error {
	if s.OnRound != nil {
		s.OnRound(s.cur, true)
	}
	for _, st := range s.rounds[s.cur].comm {
		var err error
		switch st.kind {
		case opSend:
			err = s.issueSend(st)
		case opRecv:
			err = s.issueRecv(st)
		default:
			err = fmt.Errorf("nbc: local step in comm list")
		}
		if err != nil {
			return err
		}
	}
	s.issued = true
	return nil
}

// finishRound runs the current round's local steps and advances.
func (s *Schedule) finishRound() error {
	for _, st := range s.rounds[s.cur].local {
		switch st.kind {
		case opReduce:
			if err := coll.Apply(st.op, st.elem, st.dst, st.src); err != nil {
				return err
			}
		case opCopy:
			copy(st.dst, st.src)
		default:
			return fmt.Errorf("nbc: comm step in local list")
		}
	}
	if s.OnRound != nil {
		s.OnRound(s.cur, false)
	}
	s.cur++
	s.issued = false
	s.pending = s.pending[:0]
	return nil
}

// Test makes non-blocking progress: it issues any ready round, polls
// the outstanding receives, and runs local steps as rounds complete.
// It returns true once the whole schedule has finished (possibly with
// the schedule's first error).
func (s *Schedule) Test() (bool, error) {
	for {
		if s.done {
			return true, s.err
		}
		if s.cur >= len(s.rounds) {
			s.done = true
			return true, s.err
		}
		if !s.issued {
			if err := s.startRound(); err != nil {
				return true, s.fail(err)
			}
		}
		for i, p := range s.pending {
			if p == nil {
				continue
			}
			ok, err := p.Done()
			if err != nil {
				return true, s.fail(err)
			}
			if !ok {
				// Yield before reporting "not yet": ranks are
				// goroutines, and a rank spinning Test on an
				// oversubscribed machine would otherwise starve the
				// peers whose sends it is waiting for.
				runtime.Gosched()
				return false, nil
			}
			s.pending[i] = nil
		}
		if err := s.finishRound(); err != nil {
			return true, s.fail(err)
		}
	}
}

// Wait drives the schedule to completion, parking on each outstanding
// receive in turn. Deadlock-free: sends are eager and every compiler
// emits acyclic receive dependencies.
func (s *Schedule) Wait() error {
	for {
		if s.done {
			return s.err
		}
		if s.cur >= len(s.rounds) {
			s.done = true
			return s.err
		}
		if !s.issued {
			if err := s.startRound(); err != nil {
				return s.fail(err)
			}
		}
		for i, p := range s.pending {
			if p == nil {
				continue
			}
			if err := p.Wait(); err != nil {
				return s.fail(err)
			}
			s.pending[i] = nil
		}
		if err := s.finishRound(); err != nil {
			return s.fail(err)
		}
	}
}
