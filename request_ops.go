package gompi

// Request-array helpers mirroring the MPI_{WAIT,TEST}{ANY,ALL,SOME}
// family. Completed requests are freed and their slots set to nil, the
// Go equivalent of MPI setting them to MPI_REQUEST_NULL.

// UndefinedIndex is returned by Waitany/Testany when every request is
// nil (MPI_UNDEFINED).
const UndefinedIndex = -1

// Waitany blocks until one of the requests completes and returns its
// index and status (MPI_WAITANY). Nil entries are skipped; if all
// entries are nil it returns UndefinedIndex immediately.
func Waitany(reqs []*Request) (int, Status, error) {
	for {
		live := false
		var owner *Proc
		var seq uint64
		for i, r := range reqs {
			if r == nil || r.r == nil {
				continue
			}
			if !live {
				// Capture the event counter before the scan so an
				// arrival during the scan is never slept through.
				owner = r.p
				seq = owner.dev.EventSeq()
			}
			live = true
			st, done, err := r.Test()
			if done {
				reqs[i] = nil
				return i, st, err
			}
		}
		if !live {
			return UndefinedIndex, Status{}, nil
		}
		owner.dev.WaitEvent(seq)
	}
}

// Testany polls the requests once (MPI_TESTANY): if one has completed
// it returns (index, status, true).
func Testany(reqs []*Request) (int, Status, bool, error) {
	live := false
	for i, r := range reqs {
		if r == nil || r.r == nil {
			continue
		}
		live = true
		st, done, err := r.Test()
		if done {
			reqs[i] = nil
			return i, st, true, err
		}
	}
	if !live {
		return UndefinedIndex, Status{}, true, nil
	}
	return UndefinedIndex, Status{}, false, nil
}

// Waitsome blocks until at least one request completes and returns the
// indices and statuses of everything that has (MPI_WAITSOME).
func Waitsome(reqs []*Request) ([]int, []Status, error) {
	idx, st, err := Waitany(reqs)
	if idx == UndefinedIndex {
		return nil, nil, err
	}
	indices := []int{idx}
	statuses := []Status{st}
	if err != nil {
		return indices, statuses, err
	}
	// Harvest everything else already complete.
	for i, r := range reqs {
		if r == nil || r.r == nil {
			continue
		}
		s, done, terr := r.Test()
		if done {
			reqs[i] = nil
			indices = append(indices, i)
			statuses = append(statuses, s)
			if terr != nil && err == nil {
				err = terr
			}
		}
	}
	return indices, statuses, err
}

// Testall polls whether every request has completed (MPI_TESTALL). If
// so, all are freed and their statuses returned.
func Testall(reqs []*Request) ([]Status, bool, error) {
	for _, r := range reqs {
		if r == nil || r.r == nil {
			continue
		}
		if !r.r.Done() {
			return nil, false, nil
		}
	}
	statuses := make([]Status, len(reqs))
	var first error
	for i, r := range reqs {
		st, err := r.Wait() // already complete: collects status + frees
		statuses[i] = st
		if err != nil && first == nil {
			first = err
		}
		reqs[i] = nil
	}
	return statuses, true, first
}
