// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablation studies DESIGN.md calls out. Each
// benchmark runs the corresponding experiment and reports the
// paper-comparable quantity as a custom metric (instructions per call,
// virtual messages per second, virtual timesteps per second), so
// `go test -bench=. -benchmem` prints the whole reproduction.
package gompi_test

import (
	"fmt"
	"testing"

	"gompi"
	"gompi/internal/bench"
	"gompi/internal/match"
)

// BenchmarkTable1InstructionBreakdown regenerates Table 1: the
// per-category instruction cost of MPI_ISEND and MPI_PUT in the
// default ch4 build.
func BenchmarkTable1InstructionBreakdown(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		isend, put, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(isend.Counters.TotalInstr), "isend-instr")
		b.ReportMetric(float64(put.Counters.TotalInstr), "put-instr")
		b.ReportMetric(float64(isend.Counters.Mandatory), "isend-mandatory")
		b.ReportMetric(float64(put.Counters.Mandatory), "put-mandatory")
	}
}

// BenchmarkFigure2InstructionCounts regenerates Figure 2: the build
// ladder for both devices.
func BenchmarkFigure2InstructionCounts(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		isends, puts, err := bench.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(isends[0].Counters.TotalInstr), "orig-isend-instr")
		b.ReportMetric(float64(puts[0].Counters.TotalInstr), "orig-put-instr")
		last := len(isends) - 1
		b.ReportMetric(float64(isends[last].Counters.TotalInstr), "ipo-isend-instr")
		b.ReportMetric(float64(puts[last].Counters.TotalInstr), "ipo-put-instr")
	}
}

// rateFigure runs one message-rate figure and reports the endpoints.
func rateFigure(b *testing.B, fabric string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := bench.MessageRates(fabric, 500)
		if err != nil {
			b.Fatal(err)
		}
		first, last := pts[0], pts[len(pts)-1]
		b.ReportMetric(first.IsendRate/1e6, "orig-isend-Mmsgs")
		b.ReportMetric(last.IsendRate/1e6, "ipo-isend-Mmsgs")
		b.ReportMetric(first.PutRate/1e6, "orig-put-Mmsgs")
		b.ReportMetric(last.PutRate/1e6, "ipo-put-Mmsgs")
	}
}

// BenchmarkFigure3MessageRateOFI regenerates Figure 3 (OFI/PSM2).
func BenchmarkFigure3MessageRateOFI(b *testing.B) { rateFigure(b, "ofi") }

// BenchmarkFigure4MessageRateUCX regenerates Figure 4 (UCX/EDR).
func BenchmarkFigure4MessageRateUCX(b *testing.B) { rateFigure(b, "ucx") }

// BenchmarkFigure5MessageRateInfinite regenerates Figure 5 (infinitely
// fast network).
func BenchmarkFigure5MessageRateInfinite(b *testing.B) { rateFigure(b, "inf") }

// BenchmarkFigure6StandardImprovements regenerates Figure 6: the
// proposal ladder on the infinitely fast network, peaking at the
// all-opts path (~137 M msg/s at 2.2 GHz; the paper reports 132.8M).
func BenchmarkFigure6StandardImprovements(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := bench.ProposalLadder(500)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].Rate/1e6, "floor-Mmsgs")
		b.ReportMetric(pts[len(pts)-1].Rate/1e6, "allopts-Mmsgs")
		b.ReportMetric(float64(pts[len(pts)-1].Instr), "allopts-instr")
	}
}

// BenchmarkProposalSavings regenerates the Section 3 per-proposal
// instruction savings.
func BenchmarkProposalSavings(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, base, err := bench.ProposalSavings()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(base), "baseline-instr")
		for _, r := range rows {
			if r.Name == "all_opts (3.7)" {
				b.ReportMetric(float64(r.Instr), "allopts-instr")
			}
		}
	}
}

// BenchmarkFigure7Nek5000 regenerates Figure 7 (reduced sweep): the
// Nek5000 model problem at the strong-scaling limit under both devices.
func BenchmarkFigure7Nek5000(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := bench.NekSweep(bench.NekSweepOptions{
			RankGrid: [3]int{2, 2, 2},
			Orders:   []int{5},
			MaxEPerP: 16,
			Iters:    10,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].Ratio, "ratio-at-EP1")
		b.ReportMetric(pts[len(pts)-1].Ratio, "ratio-at-EPmax")
		b.ReportMetric(pts[len(pts)-1].PerfLite, "lite-pips")
	}
}

// BenchmarkFigure8LAMMPS regenerates Figure 8 (reduced sweep): LJ
// strong scaling under both devices.
func BenchmarkFigure8LAMMPS(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := bench.LammpsSweep(bench.LammpsSweepOptions{
			RankGrid: [3]int{2, 2, 2},
			Steps:    5,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].SpeedupPct, "speedup%-512")
		b.ReportMetric(pts[len(pts)-1].SpeedupPct, "speedup%-8192")
		b.ReportMetric(pts[len(pts)-1].RateCh4, "ch4-ts/s")
	}
}

// --- ablation benchmarks (DESIGN.md section 5) --------------------------

// measureIsendInstr runs one 1-byte send under cfg and returns the MPI
// instruction count of the issue path.
func measureIsendInstr(b *testing.B, cfg gompi.Config, flagsPath func(w *gompi.Comm, p *gompi.Proc) error) int64 {
	b.Helper()
	var instr int64
	err := gompi.Run(2, cfg, func(p *gompi.Proc) error {
		w := p.World()
		if p.Rank() != 0 {
			buf := make([]byte, 1)
			_, err := w.Recv(buf, 1, gompi.Byte, 0, 0)
			return err
		}
		before := p.Counters()
		if err := flagsPath(w, p); err != nil {
			return err
		}
		instr = p.Counters().Sub(before).TotalInstr
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return instr
}

// BenchmarkAblationFlowThrough compares the semantic-flow-through ch4
// design against the layered packet-lowering baseline on the same
// fabric: instruction counts and achieved message rate.
func BenchmarkAblationFlowThrough(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		send := func(w *gompi.Comm, p *gompi.Proc) error {
			return w.Send([]byte{1}, 1, gompi.Byte, 1, 0)
		}
		ch4 := measureIsendInstr(b, gompi.Config{Device: "ch4", Fabric: "inf", Build: "default"}, send)
		orig := measureIsendInstr(b, gompi.Config{Device: "original", Fabric: "inf", Build: "default"}, send)
		b.ReportMetric(float64(ch4), "ch4-instr")
		b.ReportMetric(float64(orig), "orig-instr")
	}
}

// BenchmarkAblationRankTranslation compares the compressed (strided)
// rank representation against the dense O(P) table on the send path.
func BenchmarkAblationRankTranslation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var strided, dense int64
		err := gompi.Run(3, gompi.Config{Fabric: "inf", Build: "no-err-single-ipo"}, func(p *gompi.Proc) error {
			w := p.World()
			// Strided: every other rank (world 0,2). Dense: an
			// irregular permutation.
			sub1, err := w.Split(map[bool]int{true: 0, false: 1}[p.Rank()%2 == 0], p.Rank())
			if err != nil {
				return err
			}
			sub2, err := w.Split(0, []int{0, 2, 1}[p.Rank()])
			if err != nil {
				return err
			}
			measure := func(c *gompi.Comm, dest int) (int64, error) {
				before := p.Counters()
				if err := c.IsendNoReq([]byte{1}, 1, gompi.Byte, dest, 0); err != nil {
					return 0, err
				}
				return p.Counters().Sub(before).TotalInstr, nil
			}
			switch p.Rank() {
			case 0:
				// sub1 (even ranks {0,2}: strided), sub2 (dense).
				s, err := measure(sub1, 1)
				if err != nil {
					return err
				}
				strided = s
				d, err := measure(sub2, 1)
				if err != nil {
					return err
				}
				dense = d
			case 2:
				// Receive the strided-comm and dense-comm messages.
				buf := make([]byte, 1)
				if _, err := sub1.Recv(buf, 1, gompi.Byte, 0, 0); err != nil {
					return err
				}
				if _, err := sub2.Recv(buf, 1, gompi.Byte, 0, 0); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(strided), "strided-instr")
		b.ReportMetric(float64(dense), "dense-instr")
	}
}

// BenchmarkAblationCompletion compares request-object completion with
// the counter model of Section 3.5.
func BenchmarkAblationCompletion(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		withReq := measureIsendInstr(b, gompi.Config{Fabric: "inf", Build: "no-err-single-ipo"},
			func(w *gompi.Comm, p *gompi.Proc) error {
				req, err := w.Isend([]byte{1}, 1, gompi.Byte, 1, 0)
				if err != nil {
					return err
				}
				_, err = req.Wait()
				return err
			})
		noReq := measureIsendInstr(b, gompi.Config{Fabric: "inf", Build: "no-err-single-ipo"},
			func(w *gompi.Comm, p *gompi.Proc) error {
				if err := w.IsendNoReq([]byte{1}, 1, gompi.Byte, 1, 0); err != nil {
					return err
				}
				return w.CommWaitall()
			})
		b.ReportMetric(float64(withReq), "request-instr")
		b.ReportMetric(float64(noReq), "counter-instr")
	}
}

// BenchmarkAblationMatching compares hardware (fabric) tag matching
// against the baseline's software matching: the receive-side MPI
// instruction cost per message.
func BenchmarkAblationMatching(b *testing.B) {
	b.ReportAllocs()
	recvCost := func(device gompi.DeviceKind) int64 {
		var instr int64
		err := gompi.Run(2, gompi.Config{Device: device, Fabric: "inf", Build: "no-err-single-ipo"}, func(p *gompi.Proc) error {
			w := p.World()
			if p.Rank() == 0 {
				return w.Send([]byte{1}, 1, gompi.Byte, 1, 0)
			}
			buf := make([]byte, 1)
			before := p.Counters()
			if _, err := w.Recv(buf, 1, gompi.Byte, 0, 0); err != nil {
				return err
			}
			instr = p.Counters().Sub(before).TotalInstr
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		return instr
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(recvCost("ch4")), "hw-match-recv-instr")
		b.ReportMetric(float64(recvCost("original")), "sw-match-recv-instr")
	}
}

// BenchmarkAblationLocality compares on-node shmmod messaging against
// loopback-through-netmod: virtual cycles per 1-byte message.
func BenchmarkAblationLocality(b *testing.B) {
	b.ReportAllocs()
	cyclesPerMsg := func(rpn int) float64 {
		const msgs = 500
		var cycles float64
		err := gompi.Run(2, gompi.Config{Fabric: "ofi", RanksPerNode: rpn, Build: "no-err-single-ipo"}, func(p *gompi.Proc) error {
			w := p.World()
			if p.Rank() == 0 {
				start := p.VirtualCycles()
				for i := 0; i < msgs; i++ {
					if err := w.IsendNoReq([]byte{1}, 1, gompi.Byte, 1, 0); err != nil {
						return err
					}
				}
				cycles = float64(p.VirtualCycles()-start) / msgs
				return w.CommWaitall()
			}
			buf := make([]byte, 1)
			for i := 0; i < msgs; i++ {
				if _, err := w.Recv(buf, 1, gompi.Byte, 0, 0); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		return cycles
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(cyclesPerMsg(1), "netmod-cycles/msg")
		b.ReportMetric(cyclesPerMsg(2), "shmmod-cycles/msg")
	}
}

// BenchmarkAblationAllgatherAlgorithms compares the ring and Bruck
// allgather algorithms' end-to-end virtual latency.
func BenchmarkAblationAllgatherAlgorithms(b *testing.B) {
	b.ReportAllocs()
	// The two algorithms live in internal/coll; at this level the ring
	// is the default. We time the public Allgather (ring) and report
	// its virtual latency as the reference; the Bruck comparison runs
	// in internal/coll's own tests.
	for i := 0; i < b.N; i++ {
		var cycles float64
		err := gompi.Run(8, gompi.Config{Fabric: "ofi"}, func(p *gompi.Proc) error {
			w := p.World()
			mine := []byte{byte(p.Rank())}
			all := make([]byte, 8)
			start := p.VirtualCycles()
			if err := w.Allgather(mine, all, 1, gompi.Byte); err != nil {
				return err
			}
			if p.Rank() == 0 {
				cycles = float64(p.VirtualCycles() - start)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cycles, "ring-allgather-cycles")
	}
}

// BenchmarkWallClockIsend measures the Go-level wall-clock throughput
// of the ch4 fast path (not a paper figure; a sanity check that the
// simulation itself is fast enough to run the big sweeps). The
// exchange is windowed so the matching queues stay bounded at any b.N.
func BenchmarkWallClockIsend(b *testing.B) {
	b.ReportAllocs()
	const window = 64
	err := gompi.Run(2, gompi.Config{Fabric: "inf", Build: "no-err-single-ipo"}, func(p *gompi.Proc) error {
		w := p.World()
		buf := []byte{1}
		ack := make([]byte, 1)
		if p.Rank() == 0 {
			b.ResetTimer()
			sent := 0
			for sent < b.N {
				batch := window
				if b.N-sent < batch {
					batch = b.N - sent
				}
				for i := 0; i < batch; i++ {
					if err := w.IsendNoReq(buf, 1, gompi.Byte, 1, 0); err != nil {
						return err
					}
				}
				if _, err := w.Recv(ack, 1, gompi.Byte, 1, 1); err != nil {
					return err
				}
				sent += batch
			}
			b.StopTimer()
			return w.CommWaitall()
		}
		rbuf := make([]byte, 1)
		recvd := 0
		for recvd < b.N {
			batch := window
			if b.N-recvd < batch {
				batch = b.N - recvd
			}
			for i := 0; i < batch; i++ {
				if _, err := w.Recv(rbuf, 1, gompi.Byte, 0, 0); err != nil {
					return err
				}
			}
			if err := w.Send(ack, 1, gompi.Byte, 0, 1); err != nil {
				return err
			}
			recvd += batch
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblationEagerThreshold sweeps the fabric's eager/rendezvous
// threshold and reports the 16 KiB message latency under each: the
// handshake's latency cliff moves with the knob.
func BenchmarkAblationEagerThreshold(b *testing.B) {
	b.ReportAllocs()
	latency := func(limit int) float64 {
		const size, iters = 16384, 40
		var us float64
		err := gompi.Run(2, gompi.Config{Fabric: "ofi", EagerLimit: limit}, func(p *gompi.Proc) error {
			w := p.World()
			buf := make([]byte, size)
			peer := 1 - p.Rank()
			start := p.VirtualCycles()
			for i := 0; i < iters; i++ {
				if p.Rank() == 0 {
					if err := w.Send(buf, size, gompi.Byte, peer, 0); err != nil {
						return err
					}
					if _, err := w.Recv(buf, size, gompi.Byte, peer, 0); err != nil {
						return err
					}
				} else {
					if _, err := w.Recv(buf, size, gompi.Byte, peer, 0); err != nil {
						return err
					}
					if err := w.Send(buf, size, gompi.Byte, peer, 0); err != nil {
						return err
					}
				}
			}
			if p.Rank() == 0 {
				us = float64(p.VirtualCycles()-start) / p.ClockHz() * 1e6 / iters / 2
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		return us
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(latency(-1), "alleager-us")
		b.ReportMetric(latency(4096), "eager4k-us")
		b.ReportMetric(latency(65536), "eager64k-us")
	}
}

// BenchmarkMatchDepth sweeps the posted-queue depth for both matching
// organizations: the binned engine (ch4 / fabric "hardware" matching)
// stays near-flat while the Linear mode (the CH3-style baseline) grows
// linearly — the queue-depth dimension of the CH4-vs-Original gap. The
// prefill posts one receive per source, so the bins spread the way they
// do in a real many-peer job; each iteration matches a message for the
// deepest source and re-posts that receive. The searches/op metric is
// the engine's own count of elements inspected.
func BenchmarkMatchDepth(b *testing.B) {
	modes := []struct {
		name string
		mode match.Mode
	}{{"binned", match.Binned}, {"linear", match.Linear}}
	for _, m := range modes {
		for _, depth := range []int{1, 16, 256, 1024, 4096} {
			b.Run(fmt.Sprintf("%s/depth-%d", m.name, depth), func(b *testing.B) {
				e := &match.Engine{Mode: m.mode}
				for s := 0; s < depth; s++ {
					e.PostRecv(match.MakeBits(1, s, 0), match.FullMask, s)
				}
				hot := match.MakeBits(1, depth-1, 0)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, ok := e.Arrive(hot, 0); !ok {
						b.Fatal("arrival missed the posted receive")
					}
					e.PostRecv(hot, match.FullMask, 0)
				}
				b.StopTimer()
				b.ReportMetric(float64(e.Searches)/float64(b.N), "searches/op")
			})
		}
	}
}

// BenchmarkMatchDepthWildcard is the same sweep with one ANY_SOURCE
// receive posted ahead of the exact ones: the binned engine pays the
// seq-arbitration check against the wildcard queue but stays flat.
func BenchmarkMatchDepthWildcard(b *testing.B) {
	for _, depth := range []int{16, 1024} {
		b.Run(fmt.Sprintf("binned/depth-%d", depth), func(b *testing.B) {
			e := &match.Engine{Mode: match.Binned}
			// An old wildcard receive on another communicator sits on
			// the wildcard queue for the whole run.
			e.PostRecv(match.MakeBits(2, 0, 0), match.RecvMask(true, true), -1)
			for s := 0; s < depth; s++ {
				e.PostRecv(match.MakeBits(1, s, 0), match.FullMask, s)
			}
			hot := match.MakeBits(1, depth-1, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := e.Arrive(hot, 0); !ok {
					b.Fatal("arrival missed the posted receive")
				}
				// Small-int cookie: values above 255 would pay an
				// interface-boxing allocation and pollute allocs/op.
				e.PostRecv(hot, match.FullMask, 0)
			}
		})
	}
}

// BenchmarkNonblockingCollectives runs the nonblocking-collectives
// sweep (every algorithm family forced on the 4-rank 2-per-node
// layout) and reports the headline two-level win: the flat vs
// two-level allreduce net-byte counts and their virtual latencies.
func BenchmarkNonblockingCollectives(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := bench.CollSweep([]int{4096})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Collective != "allreduce" || p.Bytes != 4096 {
				continue
			}
			switch p.Algo {
			case "flat":
				b.ReportMetric(float64(p.NetBytes), "flat-allreduce-net-B")
				b.ReportMetric(p.LatencyUs, "flat-allreduce-us")
			case "two-level":
				b.ReportMetric(float64(p.NetBytes), "twolevel-allreduce-net-B")
				b.ReportMetric(p.LatencyUs, "twolevel-allreduce-us")
			}
		}
	}
}
