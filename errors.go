package gompi

import (
	"fmt"

	"gompi/internal/comm"
	"gompi/internal/core"
	"gompi/internal/datatype"
	"gompi/internal/instr"
	"gompi/internal/match"
)

// ErrorClass mirrors the MPI error classes the library reports.
type ErrorClass int

// Error classes.
const (
	ErrNone ErrorClass = iota
	ErrBuffer
	ErrCount
	ErrType
	ErrTag
	ErrComm
	ErrRank
	ErrRequest
	ErrTruncate
	ErrWin
	ErrRMASync
	ErrArg
	ErrOther
	// ErrHint reports a violated communicator assertion: an operation
	// contradicted a hint given at creation (a wildcard on a
	// no-wildcard communicator, a short or truncated delivery under
	// the exact-length assertion). Appended after ErrOther so existing
	// class values are stable.
	ErrHint
)

// String returns the MPI-style class name.
func (e ErrorClass) String() string {
	switch e {
	case ErrNone:
		return "MPI_SUCCESS"
	case ErrBuffer:
		return "MPI_ERR_BUFFER"
	case ErrCount:
		return "MPI_ERR_COUNT"
	case ErrType:
		return "MPI_ERR_TYPE"
	case ErrTag:
		return "MPI_ERR_TAG"
	case ErrComm:
		return "MPI_ERR_COMM"
	case ErrRank:
		return "MPI_ERR_RANK"
	case ErrRequest:
		return "MPI_ERR_REQUEST"
	case ErrTruncate:
		return "MPI_ERR_TRUNCATE"
	case ErrWin:
		return "MPI_ERR_WIN"
	case ErrRMASync:
		return "MPI_ERR_RMA_SYNC"
	case ErrArg:
		return "MPI_ERR_ARG"
	case ErrHint:
		return "MPI_ERR_HINT"
	default:
		return "MPI_ERR_OTHER"
	}
}

// checkHints validates a receive or probe envelope against the
// communicator's assertions. Unlike the chargeable error-checking row,
// hint enforcement is two predictable branches folded into the
// existing argument checks, so it carries no separate charge.
func checkHints(c *comm.Comm, src, tag int) error {
	if c.Hints.NoAnySource && src == core.AnySource {
		return errc(ErrHint, "MPI_ANY_SOURCE on a communicator asserting %s", comm.HintNoAnySource)
	}
	if c.Hints.NoAnyTag && tag == core.AnyTag {
		return errc(ErrHint, "MPI_ANY_TAG on a communicator asserting %s", comm.HintNoAnyTag)
	}
	return nil
}

// Error is the library's error value: an MPI error class plus detail.
type Error struct {
	Class ErrorClass
	Msg   string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Class, e.Msg) }

// errc builds a classed error.
func errc(class ErrorClass, format string, args ...any) *Error {
	return &Error{Class: class, Msg: fmt.Sprintf(format, args...)}
}

// ClassOf extracts the ErrorClass from an error (ErrOther for foreign
// errors, ErrNone for nil).
func ClassOf(err error) ErrorClass {
	if err == nil {
		return ErrNone
	}
	if e, ok := err.(*Error); ok {
		return e.Class
	}
	return ErrOther
}

// --- MPI-layer argument validation (Table 1 "Error checking") ---------
//
// Each check charges its instruction cost as it executes, so the error
// checking row of Table 1 is the sum of the validation the default
// build really performs: 74 instructions on the MPI_ISEND path and 72
// on the MPI_PUT path. The no-err builds skip the calls entirely.

// checkSendArgs validates a point-to-point operation's arguments.
// anySrcTag permits the receive-side wildcards.
func (p *Proc) checkSendArgs(buf []byte, count int, dt *Datatype, rank, tag int, c *Comm, anySrcTag bool) error {
	ch := func(n int64) { p.rank.Charge(instr.ErrorCheck, n) }

	ch(4) // library initialized, not finalized
	if p.dev == nil {
		return errc(ErrOther, "library not initialized")
	}
	ch(10) // communicator handle: non-null, magic cookie, not freed
	if c == nil || c.c == nil {
		return errc(ErrComm, "nil communicator")
	}
	if c.c.Freed() {
		return errc(ErrComm, "communicator already freed")
	}
	ch(10) // rank within communicator (PROC_NULL and wildcards allowed)
	if rank != core.ProcNull && !(anySrcTag && rank == core.AnySource) &&
		(rank < 0 || rank >= c.c.Size()) {
		return errc(ErrRank, "rank %d outside [0,%d)", rank, c.c.Size())
	}
	ch(6) // tag range
	if tag > match.MaxTag || (tag < 0 && !(anySrcTag && tag == core.AnyTag)) {
		return errc(ErrTag, "tag %d out of range", tag)
	}
	ch(4) // count non-negative
	if count < 0 {
		return errc(ErrCount, "negative count %d", count)
	}
	ch(8) // datatype handle valid
	if dt == nil {
		return errc(ErrType, "nil datatype")
	}
	ch(6) // datatype committed
	if !dt.Committed() {
		return errc(ErrType, "datatype %s not committed", dt.Name())
	}
	ch(8) // buffer present when data is nonempty
	if buf == nil && count > 0 && dt.Size() > 0 {
		return errc(ErrBuffer, "nil buffer with count %d", count)
	}
	ch(10) // size overflow and buffer capacity
	need := datatype.PackedSize(dt, count)
	if need < 0 {
		return errc(ErrCount, "count %d overflows", count)
	}
	if count > 0 && !dt.Contig() {
		// Laid-out buffers must span count extents.
		if len(buf) < (count-1)*dt.Extent()+dt.Size() {
			return errc(ErrBuffer, "buffer %d bytes < layout span", len(buf))
		}
	} else if len(buf) < need {
		return errc(ErrBuffer, "buffer %d bytes < %d", len(buf), need)
	}
	ch(8) // request slot / completion-vehicle validity
	return nil
}

// checkRMAArgs validates a one-sided operation's arguments.
func (p *Proc) checkRMAArgs(origin []byte, count int, dt *Datatype, target, disp int, w *Win) error {
	ch := func(n int64) { p.rank.Charge(instr.ErrorCheck, n) }

	ch(4)  // library initialized
	ch(10) // window handle valid
	if w == nil || w.w == nil {
		return errc(ErrWin, "nil window")
	}
	ch(8) // synchronization: inside an access epoch
	if !w.w.InEpoch() {
		return errc(ErrRMASync, "RMA call outside an access epoch")
	}
	ch(10) // target rank range
	if target != core.ProcNull && (target < 0 || target >= w.w.Comm.Size()) {
		return errc(ErrRank, "target %d outside [0,%d)", target, w.w.Comm.Size())
	}
	ch(4) // count
	if count < 0 {
		return errc(ErrCount, "negative count %d", count)
	}
	ch(8) // datatype valid
	if dt == nil {
		return errc(ErrType, "nil datatype")
	}
	ch(6) // committed
	if !dt.Committed() {
		return errc(ErrType, "datatype %s not committed", dt.Name())
	}
	ch(8) // origin buffer
	if origin == nil && count > 0 && dt.Size() > 0 {
		return errc(ErrBuffer, "nil origin buffer")
	}
	ch(14) // target displacement pre-check against exchanged extents
	if disp < 0 && target != core.ProcNull {
		return errc(ErrArg, "negative target displacement %d", disp)
	}
	return nil
}

// checkComm validates just a communicator argument (collectives,
// comm management).
func (p *Proc) checkComm(c *Comm) error {
	p.rank.Charge(instr.ErrorCheck, 14)
	if c == nil || c.c == nil {
		return errc(ErrComm, "nil communicator")
	}
	if c.c.Freed() {
		return errc(ErrComm, "communicator already freed")
	}
	return nil
}

// statusErr converts a completed request's status to an error when the
// operation failed (truncation is the only delivery failure the eager
// protocol produces).
func statusErr(truncated bool) error {
	if truncated {
		return errc(ErrTruncate, "message longer than receive buffer")
	}
	return nil
}

// commOf safely extracts the internal communicator.
func commOf(c *Comm) *comm.Comm {
	if c == nil {
		return nil
	}
	return c.c
}
