// Package gompi is a Go reproduction of the MPI-3.1 communication stack
// analyzed in "Why Is MPI So Slow? Analyzing the Fundamental Limits in
// Implementing MPI-3.1" (Raffenetti et al., SC'17). It provides a
// working message-passing library over simulated network fabrics with
// two interchangeable devices — the paper's lightweight CH4 design and
// a CH3-style baseline — full instruction-level cost accounting of the
// critical path, and the paper's proposed MPI standard extensions
// (global-rank sends, virtual-address RMA, predefined communicator
// handles, no-PROC_NULL / requestless / no-match sends, and the fused
// MPI_ISEND_ALL_OPTS path).
//
// Ranks are goroutines inside one process; time is virtual (per-rank
// cycle clocks driven by the same instruction charges that produce the
// paper's Table 1 and Figure 2), so message rates and application
// scaling curves are deterministic. See DESIGN.md for the full model.
//
// The entry point is Run:
//
//	cfg := gompi.Config{Device: "ch4", Fabric: "ofi", RanksPerNode: 1}
//	err := gompi.Run(4, cfg, func(p *gompi.Proc) error {
//		world := p.World()
//		if p.Rank() == 0 {
//			return world.Send([]byte("hi"), 2, gompi.Byte, 1, 0)
//		}
//		...
//	})
package gompi

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"gompi/internal/abort"
	"gompi/internal/ch4"
	"gompi/internal/comm"
	"gompi/internal/core"
	"gompi/internal/fabric"
	"gompi/internal/instr"
	"gompi/internal/nbc"
	"gompi/internal/original"
	"gompi/internal/proc"
	"gompi/internal/stall"
	"gompi/internal/trace"
	"gompi/internal/vtime"
)

// ErrStalled is returned (wrapped) by Run when the stall watchdog
// tripped: every rank was parked in a blocking wait with no transport
// activity across two scan intervals — a deadlock. The wait-graph
// diagnosis went to Config.DiagWriter (os.Stderr when unset).
var ErrStalled = errors.New("gompi: stall watchdog tripped (deadlock)")

// DeviceKind selects the MPI implementation. It is a defined string
// type, so untyped string literals ("ch4") keep compiling in Config
// literals; prefer the typed constants in new code.
type DeviceKind string

// Devices.
const (
	// DeviceCH4 is the paper's lightweight device (the default).
	DeviceCH4 DeviceKind = "ch4"
	// DeviceOriginal is the CH3-style baseline.
	DeviceOriginal DeviceKind = "original"
)

// FabricKind selects the simulated network profile.
type FabricKind string

// Fabrics.
const (
	// FabricOFI is the Omni-Path/PSM2 profile.
	FabricOFI FabricKind = "ofi"
	// FabricUCX is the Mellanox EDR profile.
	FabricUCX FabricKind = "ucx"
	// FabricInf is the infinitely fast network (the default).
	FabricInf FabricKind = "inf"
	// FabricBGQ is the Blue Gene/Q profile.
	FabricBGQ FabricKind = "bgq"
)

// BuildKind selects the Figure 2 build configuration.
type BuildKind string

// Builds, in Figure 2 legend order.
const (
	BuildDefault        BuildKind = "default"
	BuildNoErr          BuildKind = "no-err"
	BuildNoErrSingle    BuildKind = "no-err-single"
	BuildNoErrSingleIPO BuildKind = "no-err-single-ipo"
)

// Config selects the library build and platform, mirroring the paper's
// experimental axes.
type Config struct {
	// Device selects the MPI implementation: DeviceCH4 (default, the
	// paper's lightweight device) or DeviceOriginal (the CH3-style
	// baseline). Plain string literals remain accepted.
	Device DeviceKind
	// Fabric selects the simulated network: FabricOFI (Omni-Path/PSM2
	// profile), FabricUCX (Mellanox EDR profile), FabricBGQ, or
	// FabricInf (the infinitely fast network; default).
	Fabric FabricKind
	// RanksPerNode controls locality: 1 (default) makes every peer
	// remote (pure netmod); >1 co-locates ranks so the shmmod carries
	// on-node traffic (ch4 only).
	RanksPerNode int
	// Build selects the Figure 2 configuration: BuildDefault,
	// BuildNoErr, BuildNoErrSingle, BuildNoErrSingleIPO.
	Build BuildKind
	// ThreadMultiple requests MPI_THREAD_MULTIPLE: communication takes
	// the per-communicator critical section.
	ThreadMultiple bool
	// VCIs is the number of virtual communication interfaces each
	// rank's ch4 endpoint exposes (1-8; 0 means 1). With more than
	// one, concurrent goroutines of a rank driving different
	// communicators or tags proceed in parallel instead of convoying
	// on a single endpoint lock — the Zambre-style multi-VCI design.
	// The baseline device ignores it (CH3's single critical section is
	// the point of comparison). Single-VCI behavior is bit-identical
	// to earlier builds.
	VCIs int
	// Trace enables per-operation event tracing (an MPE-style
	// profile); TraceEvents bounds the per-rank ring (default 4096).
	Trace       bool
	TraceEvents int
	// EagerLimit overrides the fabric's eager/rendezvous threshold in
	// bytes: 0 keeps the profile default, a positive value sets it,
	// and a negative value disables rendezvous entirely (everything
	// eager). Exposed for the eager-threshold ablation.
	EagerLimit int
	// ShmEagerMax is the shared-memory staged/handoff threshold in
	// bytes: on-node payloads strictly larger than it are lent to the
	// receiver as zero-copy handoff descriptors — a single copy into
	// the posted buffer, or none at all when a collective folds the
	// lent view in place — instead of being fragmented through staging
	// cells. 0 (the default) disables the handoff path; ch4 only.
	ShmEagerMax int
	// ShmCellSize and ShmRingCells override the shared-memory ring
	// geometry in bytes per cell and cells per ring (0 = the shm
	// package defaults, 4096 and 64), so the staged/handoff crossover
	// can be swept against the cell cost model.
	ShmCellSize  int
	ShmRingCells int
	// RmaStagedShm forces intra-node RMA on shm-backed windows through
	// the staged cell-fragmentation cost model instead of the zero-copy
	// direct path — the ablation knob behind the BENCH rma sweep's
	// staged-vs-zerocopy comparison. Only the ch4 device honors it; the
	// baseline always stages through its packet machinery.
	RmaStagedShm bool
	// EagerPeers restores all-pairs per-peer state materialization at
	// startup: every rank pays the connection-setup cost toward every
	// peer (and pre-creates the shm ring toward every on-node peer) at
	// open, as pre-on-demand MPIs did. Default false: per-peer state
	// (fabric connection slots, shm rings) materializes on first send
	// toward each peer — the on-demand connection model of Liu et al.
	// that bounds per-rank memory by the peers actually spoken to.
	// This is the measurable baseline of the lazy-peer-state ablation.
	EagerPeers bool
	// MaxPeerBytes is a hard per-rank ceiling on modeled per-peer state
	// bytes (connection slots + shm rings). A rank whose
	// materializations exceed the ceiling fails the run with a
	// diagnostic — the assertion that keeps 10K-rank worlds inside a
	// memory budget. 0 (the default) means unlimited.
	MaxPeerBytes int64
	// CollAlgorithm pins collective algorithm selection for the whole
	// job: an nbc algorithm family name ("two-level", "flat",
	// "binomial", "rdouble", "rsag", "ring", "bruck", "pairwise",
	// "posted", ...). Empty or "auto" keeps size/topology-based
	// selection. Per-communicator override: the gompi_coll_algorithm
	// info key (CollAlgorithmKey).
	CollAlgorithm string
	// Watchdog enables the stall watchdog: a wall-clock scanner that
	// detects a deadlocked world (every rank parked in a blocking wait
	// with no transport activity), dumps a wait-graph diagnosis to
	// DiagWriter, aborts the job, and makes Run return ErrStalled. The
	// detection condition is structurally free of false positives for
	// single-threaded ranks; see internal/stall.
	Watchdog bool
	// WatchdogInterval is the scan period (50ms when zero). Raise it for
	// MPI_THREAD_MULTIPLE workloads whose compute phases exceed two scan
	// intervals while another goroutine of the rank is parked.
	WatchdogInterval time.Duration
	// DiagWriter, when non-nil, receives diagnostic dumps: the flight
	// recorder and wait graph on a watchdog trip, MPI_ABORT, or error
	// teardown. Watchdog trips fall back to os.Stderr when it is nil;
	// abort/error teardown dumps only happen when it is set.
	DiagWriter io.Writer
	// Profiler, when non-nil, receives Enter/Exit callbacks around
	// every MPI operation on every rank (a PMPI-style interception
	// layer). The implementation must be safe for concurrent use: all
	// ranks call it.
	Profiler Profiler
	// Stats, when non-nil, is filled at teardown with the per-rank
	// counters, metrics registries, and (when tracing) event logs of
	// the run. See Stats.
	Stats *Stats
}

// resolve validates the configuration into its internal pieces.
func (cfg Config) resolve() (prof fabric.Profile, bc core.Config, dev string, rpn int, err error) {
	prof, ok := fabric.ByName(string(cfg.Fabric))
	if !ok {
		return prof, bc, "", 0, fmt.Errorf("gompi: unknown fabric %q", cfg.Fabric)
	}
	bc, ok = core.ConfigByName(string(cfg.Build))
	if !ok {
		return prof, bc, "", 0, fmt.Errorf("gompi: unknown build %q", cfg.Build)
	}
	bc.ThreadMultiple = cfg.ThreadMultiple
	if cfg.ThreadMultiple {
		bc.ThreadCheck = true
	}
	if cfg.VCIs < 0 || cfg.VCIs > 8 {
		return prof, bc, "", 0, fmt.Errorf("gompi: VCIs %d outside [0,8]", cfg.VCIs)
	}
	bc.VCIs = cfg.VCIs
	dev = string(cfg.Device)
	if dev == "" {
		dev = "ch4"
	}
	if dev != "ch4" && dev != "original" {
		return prof, bc, "", 0, fmt.Errorf("gompi: unknown device %q", cfg.Device)
	}
	rpn = cfg.RanksPerNode
	if rpn <= 0 {
		rpn = 1
	}
	switch {
	case cfg.EagerLimit > 0:
		prof.EagerLimit = cfg.EagerLimit
	case cfg.EagerLimit < 0:
		prof.EagerLimit = 0 // unlimited eager
	}
	if cfg.ShmEagerMax < 0 {
		return prof, bc, "", 0, fmt.Errorf("gompi: ShmEagerMax %d negative", cfg.ShmEagerMax)
	}
	if cfg.ShmCellSize < 0 || cfg.ShmRingCells < 0 {
		return prof, bc, "", 0, fmt.Errorf("gompi: shm ring geometry %d cells x %d bytes negative",
			cfg.ShmRingCells, cfg.ShmCellSize)
	}
	bc.ShmEagerMax = cfg.ShmEagerMax
	bc.ShmCellSize = cfg.ShmCellSize
	bc.ShmRingCells = cfg.ShmRingCells
	bc.RmaStagedShm = cfg.RmaStagedShm
	if cfg.MaxPeerBytes < 0 {
		return prof, bc, "", 0, fmt.Errorf("gompi: MaxPeerBytes %d negative", cfg.MaxPeerBytes)
	}
	bc.EagerPeers = cfg.EagerPeers
	bc.MaxPeerBytes = cfg.MaxPeerBytes
	if _, err := nbc.ParseForce(cfg.CollAlgorithm); err != nil {
		return prof, bc, "", 0, fmt.Errorf("gompi: %v", err)
	}
	return prof, bc, dev, rpn, nil
}

// MaxPredefinedComms is the size of the predefined communicator handle
// table of the Section 3.3 proposal.
const MaxPredefinedComms = 8

// CommHandle names one predefined communicator slot (MPI_COMM_1..8 in
// the proposal's terms).
type CommHandle int

// Predefined communicator handles.
const (
	Comm1 CommHandle = iota
	Comm2
	Comm3
	Comm4
	Comm5
	Comm6
	Comm7
	Comm8
)

// Proc is one rank's handle to the library: the per-rank state an MPI
// process owns. All methods must be called from the rank's own
// goroutine (the body function Run started).
type Proc struct {
	rank  *proc.Rank
	dev   core.Device
	bc    core.Config
	world *Comm
	reg   *comm.Registry

	// predef is the global predefined-communicator table of the
	// Section 3.3 proposal: indexing it is a constant-offset load, not
	// a dereference into a dynamically allocated object.
	predef [MaxPredefinedComms]*Comm

	// eagerLimit is the resolved fabric eager/rendezvous threshold in
	// bytes (0 = unlimited eager); the collective layers segment
	// payloads by it so collective traffic never enters rendezvous.
	eagerLimit int
	// collAlgo is Config.CollAlgorithm, the job-wide collective
	// algorithm pin (validated at resolve time).
	collAlgo string

	// Phase-region accounting (PhaseBegin/PhaseEnd): accumulated
	// per-name stats, the name→index table, and the open-region stack.
	// Owner-goroutine only, like the trace log.
	phases     []PhaseStats
	phaseIdx   map[string]int
	phaseStack []phaseFrame

	tlog     trace.Log
	profiler Profiler
	teardown func()
	dump     func(io.Writer)
}

// DumpState writes a human-readable diagnosis of the whole job: every
// rank's virtual clock and park state, the tail of its flight recorder
// (recent protocol events), and the device wait graph — unmatched
// posted receives, unexpected-queue contents, and who-waits-on-whom
// edges. Safe to call from any goroutine at any time; the same dump
// fires automatically on a stall-watchdog trip.
func (p *Proc) DumpState(w io.Writer) {
	if p.dump != nil {
		p.dump(w)
	}
}

// Profiler is the PMPI-style interception interface: Enter fires when
// an MPI operation begins on a rank, Exit when it returns. The op kind
// is the operation's trace classification; peer and bytes describe the
// call (peer is -1 when not applicable), and vcycles is the rank's
// virtual clock at the hook. Hooks run on the rank's goroutine inside
// the operation, so they observe virtual time exactly — but they must
// not call back into the Proc, and they must be safe for concurrent
// invocation across ranks.
type Profiler interface {
	Enter(rank int, op TraceKind, peer, bytes int, vcycles int64)
	Exit(rank int, op TraceKind, peer, bytes int, vcycles int64)
}

// Run launches an n-rank job and executes body on every rank. It
// returns when all ranks finish; rank errors are joined.
func Run(n int, cfg Config, body func(p *Proc) error) error {
	prof, bc, dev, rpn, err := cfg.resolve()
	if err != nil {
		return err
	}
	if n <= 0 {
		return fmt.Errorf("gompi: world size %d", n)
	}
	hz := prof.Hz
	if hz == 0 {
		hz = 2.2e9
	}
	world := proc.NewWorld(n, rpn, hz)
	world.SetInstrCPI(prof.InstrCPI)
	reg := comm.NewRegistry()

	var open func(r *proc.Rank) core.Device
	var abortWorld func()
	var setStall func(*stall.Monitor)
	var dumpDevice func(io.Writer)
	switch dev {
	case "ch4":
		g := ch4.NewGlobal(world, prof, bc)
		open = func(r *proc.Rank) core.Device { return g.Open(r) }
		abortWorld = g.Abort
		setStall = g.SetStall
		dumpDevice = g.DumpState
	default:
		g := original.NewGlobal(world, prof, bc)
		open = func(r *proc.Rank) core.Device { return g.Open(r) }
		abortWorld = g.Abort
		setStall = g.SetStall
		dumpDevice = g.DumpState
	}

	// dumpWorld renders the whole diagnosis: per-rank clock and park
	// state, each rank's flight-recorder tail, and the device wait graph
	// (unmatched posted receives, unexpected queues, waits-on edges).
	var mon *stall.Monitor
	dumpWorld := func(w io.Writer) {
		fmt.Fprintf(w, "=== gompi state dump (%d rank(s), device %s) ===\n", n, dev)
		for i := 0; i < n; i++ {
			r := world.Rank(i)
			fmt.Fprintf(w, "rank %d: vcycles=%d parked=%v\n", i, int64(r.Now()), mon.Parked(i))
			r.Metrics().Flight.Dump(w, fmt.Sprintf("rank %d", i))
		}
		dumpDevice(w)
	}

	// One diagnosis per job, whoever gets there first: the watchdog
	// trip, MPI_ABORT, or the first failing rank's teardown.
	var diagOnce sync.Once
	teardown := func() {
		if cfg.DiagWriter != nil {
			diagOnce.Do(func() { dumpWorld(cfg.DiagWriter) })
		}
		abortWorld()
		reg.Abort()
	}

	if cfg.Watchdog {
		diag := cfg.DiagWriter
		if diag == nil {
			diag = os.Stderr
		}
		mon = stall.New(n, cfg.WatchdogInterval, func() {
			diagOnce.Do(func() {
				fmt.Fprintln(diag, "gompi: stall watchdog tripped — every rank parked with no transport activity")
				dumpWorld(diag)
			})
			teardown()
		})
		setStall(mon)
		mon.Start()
		defer mon.Stop()
	}
	if cfg.Stats != nil {
		*cfg.Stats = Stats{
			Hz:     hz,
			Ranks:  make([]RankStats, n),
			traces: make([][]trace.Event, n),
		}
	}
	errs := world.RunAll(func(r *proc.Rank) error {
		// A rank dying by panic must also tear the world down, or
		// peers blocked on it would hang; re-panic for proc.Run's
		// recovery to report.
		defer func() {
			if rec := recover(); rec != nil {
				teardown()
				panic(rec)
			}
		}()
		defer mon.RankExited(r.ID())
		p := &Proc{rank: r, dev: open(r), bc: bc, reg: reg,
			eagerLimit: prof.EagerLimit, collAlgo: cfg.CollAlgorithm,
			profiler: cfg.Profiler, teardown: teardown, dump: dumpWorld}
		if cfg.Trace {
			capEvents := cfg.TraceEvents
			if capEvents == 0 {
				capEvents = 4096
			}
			p.tlog.Enable(capEvents)
		}
		r.StartBarrier()
		p.world = &Comm{p: p, c: comm.NewWorld(reg, n, r.ID())}
		err := body(p)
		if cfg.Stats != nil {
			// Each rank fills only its own slot, so the collection
			// needs no lock; the merge happens after RunAll joins.
			cfg.Stats.Ranks[r.ID()] = RankStats{
				Rank:          r.ID(),
				Valid:         true,
				Counters:      p.Counters(),
				Metrics:       p.dev.Stats(),
				Phases:        p.phaseSnapshot(),
				TraceDropped:  p.tlog.Dropped(),
				VirtualCycles: int64(r.Now()),
			}
			cfg.Stats.traces[r.ID()] = p.tlog.Events()
		}
		if err != nil {
			// Tear the world down so peers blocked on this rank fail
			// fast instead of hanging; their abort fallout is filtered
			// below in favor of this original error.
			teardown()
		}
		return err
	})
	if cfg.Stats != nil {
		cfg.Stats.WatchdogTrips = mon.Trips()
	}
	// Prefer original failures over teardown fallout.
	var originals, fallout []error
	for _, e := range errs {
		switch {
		case e == nil:
		case errors.Is(e, abort.ErrWorldAborted):
			fallout = append(fallout, e)
		default:
			originals = append(originals, e)
		}
	}
	if len(originals) > 0 {
		return errors.Join(originals...)
	}
	// A watchdog trip aborts the world, so every rank error is abort
	// fallout; surface the deadlock itself instead.
	if mon.Trips() > 0 {
		return fmt.Errorf("%w: diagnosis written to DiagWriter", ErrStalled)
	}
	return errors.Join(fallout...)
}

// Rank returns the calling process's MPI_COMM_WORLD rank.
func (p *Proc) Rank() int { return p.rank.ID() }

// Size returns the world size.
func (p *Proc) Size() int { return p.rank.World().Size() }

// World returns the MPI_COMM_WORLD communicator.
func (p *Proc) World() *Comm { return p.world }

// PredefComm returns the communicator installed in the predefined
// handle slot (nil until CommDupPredefined populates it). The lookup is
// the proposal's constant-indexed global load.
func (p *Proc) PredefComm(h CommHandle) *Comm { return p.predef[h] }

// Progress advances the communication engines; long compute loops may
// call it to let one-sided fallback traffic make progress.
func (p *Proc) Progress() { p.dev.Progress() }

// Abort terminates the whole job immediately (MPI_ABORT): every rank's
// blocked operation fails fast and Run returns an error carrying the
// code. It does not return.
func (p *Proc) Abort(code int) {
	p.teardown()
	panic(errc(ErrOther, "MPI_ABORT called by rank %d with code %d", p.Rank(), code))
}

// Counters is a public snapshot of the rank's cost accounting: the
// Table 1 categories plus virtual time.
type Counters struct {
	ErrorCheck  int64 `json:"error_check"`
	ThreadCheck int64 `json:"thread_check"`
	Call        int64 `json:"call"`
	Redundant   int64 `json:"redundant"`
	Mandatory   int64 `json:"mandatory"`
	TotalInstr  int64 `json:"total_instr"` // sum of the five MPI categories
	Transport   int64 `json:"transport"`   // fabric/shm cycles (not MPI instructions)
	Compute     int64 `json:"compute"`     // modeled application cycles
	Cycles      int64 `json:"cycles"`      // total virtual cycles
}

// Counters returns the current accumulated costs for this rank.
func (p *Proc) Counters() Counters {
	prof := p.rank.Profile()
	return Counters{
		ErrorCheck:  prof.Count(instr.ErrorCheck),
		ThreadCheck: prof.Count(instr.ThreadCheck),
		Call:        prof.Count(instr.Call),
		Redundant:   prof.Count(instr.Redundant),
		Mandatory:   prof.Count(instr.Mandatory),
		TotalInstr:  prof.Total(),
		Transport:   prof.Count(instr.Transport),
		Compute:     prof.Count(instr.Compute),
		Cycles:      prof.Cycles(),
	}
}

// Sub returns the difference c - o, for per-region measurements.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		ErrorCheck:  c.ErrorCheck - o.ErrorCheck,
		ThreadCheck: c.ThreadCheck - o.ThreadCheck,
		Call:        c.Call - o.Call,
		Redundant:   c.Redundant - o.Redundant,
		Mandatory:   c.Mandatory - o.Mandatory,
		TotalInstr:  c.TotalInstr - o.TotalInstr,
		Transport:   c.Transport - o.Transport,
		Compute:     c.Compute - o.Compute,
		Cycles:      c.Cycles - o.Cycles,
	}
}

// Metrics snapshots this rank's observability registry (message and
// byte counts by path, matching statistics, pool behavior, RMA op
// counts). The counters are per-rank and lock-free; see DESIGN.md §6a.
func (p *Proc) Metrics() MetricsSnapshot { return p.dev.Stats() }

// VirtualTime returns the rank's virtual clock in seconds since spawn.
func (p *Proc) VirtualTime() float64 {
	return p.rank.Clock().Seconds(0, p.rank.Now())
}

// VirtualCycles returns the rank's virtual clock in cycles.
func (p *Proc) VirtualCycles() int64 { return int64(p.rank.Now()) }

// ClockHz returns the model core frequency.
func (p *Proc) ClockHz() float64 { return p.rank.Clock().Hz() }

// ChargeCompute advances the rank's virtual clock by modeled
// application work (flop count times cycles per flop). Applications use
// it to account for arithmetic the simulation performs natively.
func (p *Proc) ChargeCompute(cycles int64) {
	p.rank.ChargeCycles(instr.Compute, cycles)
}

// noteColl attributes one collective call to its algorithm slot in the
// rank's metrics registry.
func (p *Proc) noteColl(algo, bytes int) {
	p.rank.Metrics().NoteColl(algo, int64(bytes))
}

// chargeCall records the public MPI symbol's call-frame cost.
func (p *Proc) chargeCall() {
	if !p.bc.Inline {
		p.rank.Charge(instr.Call, core.CallEntryCost)
	}
}

// chargeThread performs the runtime thread-level check (and the real
// critical section under MPI_THREAD_MULTIPLE). Returns an unlock
// function (no-op when single-threaded).
func (p *Proc) chargeThread(c *comm.Comm, win bool) func() {
	if !p.bc.ThreadCheck {
		return func() {}
	}
	cost := int64(core.ThreadCheckCost)
	if win {
		cost = core.ThreadCheckWinCost
	}
	p.rank.Charge(instr.ThreadCheck, cost)
	if !p.bc.ThreadMultiple || c == nil {
		return func() {}
	}
	p.rank.Charge(instr.ThreadCheck, instr.CostLockUnlock)
	c.Lock.Lock()
	return c.Lock.Unlock
}

// wtime is the vtime seconds helper the benchmark harness uses.
func (p *Proc) wtimeAt(t vtime.Time) float64 { return p.rank.Clock().Seconds(0, t) }

// TraceEvent is one recorded operation of the event trace.
type TraceEvent = trace.Event

// TraceKind classifies traced operations (see the Trace* constants).
type TraceKind = trace.Kind

// Trace operation kinds, re-exported for event inspection.
const (
	TraceSend   = trace.KindSend
	TraceRecv   = trace.KindRecv
	TraceWait   = trace.KindWait
	TraceColl   = trace.KindColl
	TracePut    = trace.KindPut
	TraceGet    = trace.KindGet
	TraceAcc    = trace.KindAcc
	TraceSync   = trace.KindSync
	TraceProbe  = trace.KindProbe
	TraceSched  = trace.KindSched
	TraceFlush  = trace.KindFlush
	TraceNotify = trace.KindNotify
)

// TraceEvents returns this rank's recorded events in chronological
// order (empty unless Config.Trace was set).
func (p *Proc) TraceEvents() []TraceEvent { return p.tlog.Events() }

// WriteTraceSummary renders the per-operation profile of this rank.
func (p *Proc) WriteTraceSummary(w interface{ Write([]byte) (int, error) }) {
	p.tlog.Summarize().Write(w)
}

// span starts a traced/profiled interval; the returned func records
// it. A nil return (tracing and profiling both off) is handled by the
// callers' `if end != nil` — the steady-state path stays
// allocation-free when observability is disabled.
func (p *Proc) span(kind trace.Kind, peer, bytes int) func() {
	return p.spanVCI(kind, peer, bytes, -1)
}

// spanVCI is span with the virtual communication interface the
// operation will use (-1 when not applicable); the point-to-point
// paths record it so Chrome traces show which channel carried each
// message.
func (p *Proc) spanVCI(kind trace.Kind, peer, bytes, vci int) func() {
	traced := p.tlog.Enabled()
	if !traced && p.profiler == nil {
		return nil
	}
	start := p.rank.Now()
	if p.profiler != nil {
		p.profiler.Enter(p.rank.ID(), kind, peer, bytes, int64(start))
	}
	return func() {
		end := p.rank.Now()
		if traced {
			p.tlog.Record(trace.Event{Kind: kind, Peer: peer, Bytes: bytes, VCI: vci, Start: start, End: end})
		}
		if p.profiler != nil {
			p.profiler.Exit(p.rank.ID(), kind, peer, bytes, int64(end))
		}
	}
}

// vciOf asks the device which interface a send (recv=false) or
// receive (recv=true) with the given tag on c would ride; -1 when
// observability is off (the steady-state path computes nothing), the
// device has no VCI notion (the baseline), or the op takes the
// cross-VCI path.
func (p *Proc) vciOf(c *Comm, tag int, recv bool) int {
	if !p.tlog.Enabled() && p.profiler == nil {
		return -1
	}
	if d, ok := p.dev.(interface {
		VCIOf(c *comm.Comm, tag int, recv bool) int
	}); ok {
		return d.VCIOf(c.c, tag, recv)
	}
	return -1
}
