package gompi

import "gompi/internal/coll"

// Scan computes the inclusive prefix reduction over ranks 0..r
// (MPI_SCAN), folding in rank order.
func (c *Comm) Scan(send, recv []byte, count int, elem *Datatype, op Op) error {
	unlock, err := c.collEnter()
	if err != nil {
		return err
	}
	defer unlock()
	n := count * elem.Size()
	return coll.Scan(c.port(), op, elem, send[:n], recv[:n])
}

// Exscan computes the exclusive prefix reduction over ranks 0..r-1
// (MPI_EXSCAN); rank 0's recv is left untouched.
func (c *Comm) Exscan(send, recv []byte, count int, elem *Datatype, op Op) error {
	unlock, err := c.collEnter()
	if err != nil {
		return err
	}
	defer unlock()
	n := count * elem.Size()
	return coll.Exscan(c.port(), op, elem, send[:n], recv[:n])
}

// Gatherv concentrates variable-size byte blocks on root
// (MPI_GATHERV): counts[r] bytes from rank r land at byte offset
// displs[r] of recv. counts/displs/recv are significant only on root.
func (c *Comm) Gatherv(send []byte, recv []byte, counts, displs []int, root int) error {
	unlock, err := c.collEnter()
	if err != nil {
		return err
	}
	defer unlock()
	if c.Rank() == root {
		need := 0
		for r := range counts {
			if end := displs[r] + counts[r]; end > need {
				need = end
			}
		}
		if len(recv) < need {
			return errc(ErrBuffer, "gatherv recv %d < %d", len(recv), need)
		}
	}
	return coll.Gatherv(c.port(), send, recv, counts, displs, root)
}

// Scatterv distributes variable-size byte blocks from root
// (MPI_SCATTERV); rank r receives counts[r] bytes into recv.
func (c *Comm) Scatterv(send []byte, counts, displs []int, recv []byte, root int) error {
	unlock, err := c.collEnter()
	if err != nil {
		return err
	}
	defer unlock()
	return coll.Scatterv(c.port(), send, counts, displs, recv, root)
}

// Allgatherv concentrates variable-size byte blocks everywhere
// (MPI_ALLGATHERV); every rank supplies identical counts/displs tables.
func (c *Comm) Allgatherv(send []byte, recv []byte, counts, displs []int) error {
	unlock, err := c.collEnter()
	if err != nil {
		return err
	}
	defer unlock()
	need := 0
	for r := range counts {
		if end := displs[r] + counts[r]; end > need {
			need = end
		}
	}
	if len(recv) < need {
		return errc(ErrBuffer, "allgatherv recv %d < %d", len(recv), need)
	}
	return coll.Allgatherv(c.port(), send, recv, counts, displs)
}
