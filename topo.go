package gompi

import (
	"gompi/internal/topo"
)

// CartComm is a communicator with an attached Cartesian topology
// (MPI_CART_CREATE). It embeds the communicator, so all communication
// calls work directly on it.
type CartComm struct {
	*Comm
	cart *topo.Cart
}

// DimsCreate factors nnodes into ndims balanced extents
// (MPI_DIMS_CREATE). Nonzero entries of hints are kept fixed.
func DimsCreate(nnodes, ndims int, hints []int) ([]int, error) {
	dims, err := topo.DimsCreate(nnodes, ndims, hints)
	if err != nil {
		return nil, errc(ErrArg, "%v", err)
	}
	return dims, nil
}

// CartCreate attaches a Cartesian topology to a duplicate of the
// communicator (MPI_CART_CREATE). The grid must exactly cover the
// communicator; rank reordering is not performed (reorder=false
// semantics). Collective.
func (c *Comm) CartCreate(dims []int, periodic []bool) (*CartComm, error) {
	if err := c.p.checkComm(c); err != nil {
		return nil, err
	}
	cart, err := topo.NewCart(dims, periodic)
	if err != nil {
		return nil, errc(ErrArg, "%v", err)
	}
	if cart.Size() != c.Size() {
		return nil, errc(ErrArg, "grid %v has %d positions, communicator has %d ranks",
			dims, cart.Size(), c.Size())
	}
	dup, err := c.Dup()
	if err != nil {
		return nil, err
	}
	return &CartComm{Comm: dup, cart: cart}, nil
}

// Dims returns the grid extents.
func (c *CartComm) Dims() []int { return c.cart.Dims() }

// Coords returns the calling rank's grid coordinates (MPI_CART_COORDS
// on the own rank).
func (c *CartComm) Coords() []int {
	coords, _ := c.cart.Coords(c.Rank())
	return coords
}

// CoordsOf returns any rank's coordinates.
func (c *CartComm) CoordsOf(rank int) ([]int, error) {
	coords, err := c.cart.Coords(rank)
	if err != nil {
		return nil, errc(ErrRank, "%v", err)
	}
	return coords, nil
}

// CartRank returns the rank at the given coordinates (MPI_CART_RANK),
// wrapping periodic dimensions.
func (c *CartComm) CartRank(coords []int) (int, error) {
	r, err := c.cart.Rank(coords)
	if err != nil {
		return -1, errc(ErrArg, "%v", err)
	}
	return r, nil
}

// Shift returns (src, dst) for a displacement along dim
// (MPI_CART_SHIFT): the caller receives from src and sends to dst;
// ProcNull marks a non-periodic boundary — ready to pass straight to
// Send/Recv, which is the application pattern the paper's PROC_NULL
// analysis (Section 3.4) describes.
func (c *CartComm) Shift(dim, disp int) (src, dst int, err error) {
	src, dst, err = c.cart.Shift(c.Rank(), dim, disp)
	if err != nil {
		return ProcNull, ProcNull, errc(ErrArg, "%v", err)
	}
	return src, dst, nil
}

// Neighbors returns the 2*ndims nearest neighbors (low, high per
// dimension), ProcNull at non-periodic boundaries.
func (c *CartComm) Neighbors() []int {
	nb, _ := c.cart.Neighbors(c.Rank())
	return nb
}

// NeighborAllgather exchanges one equal-size block with every nearest
// neighbor (MPI_NEIGHBOR_ALLGATHER on the Cartesian topology): recv
// holds 2*ndims blocks in Neighbors() order; blocks from ProcNull
// neighbors are zeroed.
func (c *CartComm) NeighborAllgather(send, recv []byte, count int, dt *Datatype) error {
	n := count * dt.Size()
	nb := c.Neighbors()
	if len(recv) < n*len(nb) {
		return errc(ErrBuffer, "neighbor allgather recv %d < %d", len(recv), n*len(nb))
	}
	// Send to every live neighbor with a direction-coded tag, then
	// receive; eager sends keep this deadlock-free. The tag encodes
	// the direction so paired neighbors in small periodic grids (where
	// low == high) stay distinguishable: my send in direction d is the
	// peer's receive from its opposite direction.
	const tagBase = 600
	for d, peer := range nb {
		if peer == ProcNull {
			continue
		}
		if err := c.IsendNoReq(send[:n], count, dt, peer, tagBase+(d^1)); err != nil {
			return err
		}
	}
	for d, peer := range nb {
		blk := recv[d*n : (d+1)*n]
		if peer == ProcNull {
			for i := range blk {
				blk[i] = 0
			}
			continue
		}
		if _, err := c.Recv(blk, count, dt, peer, tagBase+d); err != nil {
			return err
		}
	}
	return c.CommWaitall()
}
