package gompi

import (
	"gompi/internal/metrics"
	"gompi/internal/nbc"
	"gompi/internal/topo"
)

// CartComm is a communicator with an attached Cartesian topology
// (MPI_CART_CREATE). It embeds the communicator, so all communication
// calls work directly on it.
type CartComm struct {
	*Comm
	cart *topo.Cart
}

// DimsCreate factors nnodes into ndims balanced extents
// (MPI_DIMS_CREATE). Nonzero entries of hints are kept fixed.
func DimsCreate(nnodes, ndims int, hints []int) ([]int, error) {
	dims, err := topo.DimsCreate(nnodes, ndims, hints)
	if err != nil {
		return nil, errc(ErrArg, "%v", err)
	}
	return dims, nil
}

// CartCreate attaches a Cartesian topology to a duplicate of the
// communicator (MPI_CART_CREATE). The grid must exactly cover the
// communicator; rank reordering is not performed (reorder=false
// semantics). Collective.
func (c *Comm) CartCreate(dims []int, periodic []bool) (*CartComm, error) {
	if err := c.p.checkComm(c); err != nil {
		return nil, err
	}
	cart, err := topo.NewCart(dims, periodic)
	if err != nil {
		return nil, errc(ErrArg, "%v", err)
	}
	if cart.Size() != c.Size() {
		return nil, errc(ErrArg, "grid %v has %d positions, communicator has %d ranks",
			dims, cart.Size(), c.Size())
	}
	dup, err := c.Dup()
	if err != nil {
		return nil, err
	}
	return &CartComm{Comm: dup, cart: cart}, nil
}

// Dims returns the grid extents.
func (c *CartComm) Dims() []int { return c.cart.Dims() }

// Coords returns the calling rank's grid coordinates (MPI_CART_COORDS
// on the own rank).
func (c *CartComm) Coords() []int {
	coords, _ := c.cart.Coords(c.Rank())
	return coords
}

// CoordsOf returns any rank's coordinates.
func (c *CartComm) CoordsOf(rank int) ([]int, error) {
	coords, err := c.cart.Coords(rank)
	if err != nil {
		return nil, errc(ErrRank, "%v", err)
	}
	return coords, nil
}

// CartRank returns the rank at the given coordinates (MPI_CART_RANK),
// wrapping periodic dimensions.
func (c *CartComm) CartRank(coords []int) (int, error) {
	r, err := c.cart.Rank(coords)
	if err != nil {
		return -1, errc(ErrArg, "%v", err)
	}
	return r, nil
}

// Shift returns (src, dst) for a displacement along dim
// (MPI_CART_SHIFT): the caller receives from src and sends to dst;
// ProcNull marks a non-periodic boundary — ready to pass straight to
// Send/Recv, which is the application pattern the paper's PROC_NULL
// analysis (Section 3.4) describes.
func (c *CartComm) Shift(dim, disp int) (src, dst int, err error) {
	src, dst, err = c.cart.Shift(c.Rank(), dim, disp)
	if err != nil {
		return ProcNull, ProcNull, errc(ErrArg, "%v", err)
	}
	return src, dst, nil
}

// Neighbors returns the 2*ndims nearest neighbors (low, high per
// dimension), ProcNull at non-periodic boundaries.
func (c *CartComm) Neighbors() []int {
	nb, _ := c.cart.Neighbors(c.Rank())
	return nb
}

// Neighborhood collectives (MPI_NEIGHBOR_ALLGATHER and friends): each
// rank exchanges only with its declared neighbors, compiled through the
// nbc schedule engine. The compilers order each transfer list
// local-first — shm-reachable neighbors are injected and drained before
// the schedule parks on net peers — and the compiled schedules go
// through the communicator's schedule cache, so a halo exchange
// repeated every iteration compiles once. ProcNull neighbors (the open
// edges of a non-periodic grid) transfer nothing; their receive blocks
// are zeroed on every activation through the schedule prologue.

// neighborAllgather runs the blocking neighborhood allgather over
// explicit neighbor lists; CartComm and GraphComm supply theirs. The
// schedule is cached per (buffers, list length): a communicator's
// neighbor lists are fixed at topology creation, so buffer identity
// pins the rest.
func (c *Comm) neighborAllgather(send, recv []byte, count int, dt *Datatype, sources, destinations []int) error {
	done, err := c.collEnter()
	if err != nil {
		return err
	}
	defer done()
	n := count * dt.Size()
	if len(recv) < n*len(sources) {
		return errc(ErrBuffer, "neighbor allgather recv %d < %d", len(recv), n*len(sources))
	}
	t := c.nbcPort()
	sp, sl := nbc.BufKey(send[:n])
	rp, rl := nbc.BufKey(recv[:n*len(sources)])
	key := nbc.CacheKey{Kind: nbc.CacheNeighborAllgather, Algo: metrics.CollNeighborAllgather,
		Root: -1, Send: sp, SendLen: sl, Recv: rp, RecvLen: rl}
	req, err := c.cachedStart(key, func(tag int) (*nbc.Schedule, error) {
		return nbc.NeighborAllgather(t, tag, send[:n], recv[:n*len(sources)], sources, destinations)
	})
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

// neighborAlltoall runs the blocking neighborhood all-to-all over
// explicit neighbor lists.
func (c *Comm) neighborAlltoall(send, recv []byte, count int, dt *Datatype, sources, destinations []int) error {
	done, err := c.collEnter()
	if err != nil {
		return err
	}
	defer done()
	n := count * dt.Size()
	if len(send) < n*len(destinations) {
		return errc(ErrBuffer, "neighbor alltoall send %d < %d", len(send), n*len(destinations))
	}
	if len(recv) < n*len(sources) {
		return errc(ErrBuffer, "neighbor alltoall recv %d < %d", len(recv), n*len(sources))
	}
	t := c.nbcPort()
	sp, sl := nbc.BufKey(send[:n*len(destinations)])
	rp, rl := nbc.BufKey(recv[:n*len(sources)])
	key := nbc.CacheKey{Kind: nbc.CacheNeighborAlltoall, Algo: metrics.CollNeighborAlltoall,
		Root: -1, Send: sp, SendLen: sl, Recv: rp, RecvLen: rl}
	req, err := c.cachedStart(key, func(tag int) (*nbc.Schedule, error) {
		return nbc.NeighborAlltoall(t, tag, n, send[:n*len(destinations)], recv[:n*len(sources)], sources, destinations)
	})
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

// neighborAlltoallv runs the ragged blocking variant: per-neighbor
// element counts and displacements (in elements of dt). The counts fold
// into the cache key, so changing them recompiles instead of replaying
// a stale shape.
func (c *Comm) neighborAlltoallv(send []byte, sendCounts, sendDispls []int, recv []byte, recvCounts, recvDispls []int, dt *Datatype, sources, destinations []int) error {
	done, err := c.collEnter()
	if err != nil {
		return err
	}
	defer done()
	es := dt.Size()
	sc := scaleVec(sendCounts, es)
	sd := scaleVec(sendDispls, es)
	rc := scaleVec(recvCounts, es)
	rd := scaleVec(recvDispls, es)
	t := c.nbcPort()
	sp, sl := nbc.BufKey(send)
	rp, rl := nbc.BufKey(recv)
	key := nbc.CacheKey{Kind: nbc.CacheNeighborAlltoall, Algo: metrics.CollNeighborAlltoallv,
		Root: -1, Send: sp, SendLen: sl, Recv: rp, RecvLen: rl,
		Shape: nbc.ShapeHash(sc, sd, rc, rd)}
	req, err := c.cachedStart(key, func(tag int) (*nbc.Schedule, error) {
		return nbc.NeighborAlltoallv(t, tag, send, sc, sd, recv, rc, rd, sources, destinations)
	})
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

// scaleVec multiplies a count/displacement vector by the element size.
func scaleVec(v []int, es int) []int {
	out := make([]int, len(v))
	for i, x := range v {
		out[i] = x * es
	}
	return out
}

// neighborAllgatherInit compiles a persistent neighborhood allgather.
func (c *Comm) neighborAllgatherInit(send, recv []byte, count int, dt *Datatype, sources, destinations []int) (*PersistentColl, error) {
	done, err := c.collEnter()
	if err != nil {
		return nil, err
	}
	defer done()
	n := count * dt.Size()
	if len(recv) < n*len(sources) {
		return nil, errc(ErrBuffer, "neighbor allgather recv %d < %d", len(recv), n*len(sources))
	}
	tag := c.persistTag()
	s, err := nbc.NeighborAllgather(c.nbcPort(), tag, send[:n], recv[:n*len(sources)], sources, destinations)
	if err != nil {
		return nil, errc(ErrArg, "%v", err)
	}
	return c.persistWrap(s, tag), nil
}

// neighborAlltoallInit compiles a persistent neighborhood all-to-all.
func (c *Comm) neighborAlltoallInit(send, recv []byte, count int, dt *Datatype, sources, destinations []int) (*PersistentColl, error) {
	done, err := c.collEnter()
	if err != nil {
		return nil, err
	}
	defer done()
	n := count * dt.Size()
	if len(send) < n*len(destinations) || len(recv) < n*len(sources) {
		return nil, errc(ErrBuffer, "neighbor alltoall_init buffers short")
	}
	tag := c.persistTag()
	s, err := nbc.NeighborAlltoall(c.nbcPort(), tag, n, send[:n*len(destinations)], recv[:n*len(sources)], sources, destinations)
	if err != nil {
		return nil, errc(ErrArg, "%v", err)
	}
	return c.persistWrap(s, tag), nil
}

// NeighborAllgather exchanges one equal-size block with every nearest
// neighbor (MPI_NEIGHBOR_ALLGATHER on the Cartesian topology): recv
// holds 2*ndims blocks in Neighbors() order; blocks from ProcNull
// neighbors are zeroed.
func (c *CartComm) NeighborAllgather(send, recv []byte, count int, dt *Datatype) error {
	nb := c.Neighbors()
	return c.Comm.neighborAllgather(send, recv, count, dt, nb, nb)
}

// NeighborAlltoall sends a distinct block to each nearest neighbor and
// receives one from each (MPI_NEIGHBOR_ALLTOALL on the Cartesian
// topology), blocks in Neighbors() order.
func (c *CartComm) NeighborAlltoall(send, recv []byte, count int, dt *Datatype) error {
	nb := c.Neighbors()
	return c.Comm.neighborAlltoall(send, recv, count, dt, nb, nb)
}

// NeighborAllgatherInit binds a persistent neighborhood allgather
// (MPI_NEIGHBOR_ALLGATHER_INIT): the halo-exchange schedule — transfer
// list, locality ordering, ProcNull zeroing — compiles once, and every
// Start replays it.
func (c *CartComm) NeighborAllgatherInit(send, recv []byte, count int, dt *Datatype) (*PersistentColl, error) {
	nb := c.Neighbors()
	return c.Comm.neighborAllgatherInit(send, recv, count, dt, nb, nb)
}

// NeighborAlltoallInit binds a persistent neighborhood all-to-all
// (MPI_NEIGHBOR_ALLTOALL_INIT).
func (c *CartComm) NeighborAlltoallInit(send, recv []byte, count int, dt *Datatype) (*PersistentColl, error) {
	nb := c.Neighbors()
	return c.Comm.neighborAlltoallInit(send, recv, count, dt, nb, nb)
}

// GraphComm is a communicator with an attached distributed-graph
// topology (MPI_DIST_GRAPH_CREATE_ADJACENT): each rank declares the
// neighbors it receives from (sources) and sends to (destinations).
type GraphComm struct {
	*Comm
	sources      []int
	destinations []int
}

// DistGraphCreateAdjacent attaches an adjacent-specification graph
// topology to a duplicate of the communicator. Every rank passes its
// own in- and out-neighbor lists; reordering is not performed. The
// declared lists must be consistent across ranks (r lists s as a source
// exactly as often as s lists r as a destination) — as in MPI, an
// inconsistent graph is erroneous and shows up as a stall.
func (c *Comm) DistGraphCreateAdjacent(sources, destinations []int) (*GraphComm, error) {
	if err := c.p.checkComm(c); err != nil {
		return nil, err
	}
	for _, r := range sources {
		if r < 0 || r >= c.Size() {
			return nil, errc(ErrRank, "graph source %d outside [0,%d)", r, c.Size())
		}
	}
	for _, r := range destinations {
		if r < 0 || r >= c.Size() {
			return nil, errc(ErrRank, "graph destination %d outside [0,%d)", r, c.Size())
		}
	}
	dup, err := c.Dup()
	if err != nil {
		return nil, err
	}
	g := &GraphComm{Comm: dup}
	g.sources = append(g.sources, sources...)
	g.destinations = append(g.destinations, destinations...)
	return g, nil
}

// Sources returns the declared in-neighbors (copy).
func (c *GraphComm) Sources() []int { return append([]int(nil), c.sources...) }

// Destinations returns the declared out-neighbors (copy).
func (c *GraphComm) Destinations() []int { return append([]int(nil), c.destinations...) }

// NeighborAllgather exchanges the rank's block with its graph
// neighbors: send goes to every destination, recv holds one block per
// source in declaration order.
func (c *GraphComm) NeighborAllgather(send, recv []byte, count int, dt *Datatype) error {
	return c.Comm.neighborAllgather(send, recv, count, dt, c.sources, c.destinations)
}

// NeighborAlltoall sends block j to destination j and receives block i
// from source i.
func (c *GraphComm) NeighborAlltoall(send, recv []byte, count int, dt *Datatype) error {
	return c.Comm.neighborAlltoall(send, recv, count, dt, c.sources, c.destinations)
}

// NeighborAlltoallv is the ragged graph exchange: counts and
// displacements are in elements of dt, one entry per declared neighbor.
func (c *GraphComm) NeighborAlltoallv(send []byte, sendCounts, sendDispls []int, recv []byte, recvCounts, recvDispls []int, dt *Datatype) error {
	if len(sendCounts) != len(c.destinations) || len(sendDispls) != len(c.destinations) {
		return errc(ErrArg, "neighbor alltoallv: %d/%d send counts/displs for %d destinations", len(sendCounts), len(sendDispls), len(c.destinations))
	}
	if len(recvCounts) != len(c.sources) || len(recvDispls) != len(c.sources) {
		return errc(ErrArg, "neighbor alltoallv: %d/%d recv counts/displs for %d sources", len(recvCounts), len(recvDispls), len(c.sources))
	}
	return c.Comm.neighborAlltoallv(send, sendCounts, sendDispls, recv, recvCounts, recvDispls, dt, c.sources, c.destinations)
}

// NeighborAllgatherInit binds a persistent graph allgather.
func (c *GraphComm) NeighborAllgatherInit(send, recv []byte, count int, dt *Datatype) (*PersistentColl, error) {
	return c.Comm.neighborAllgatherInit(send, recv, count, dt, c.sources, c.destinations)
}

// NeighborAlltoallInit binds a persistent graph all-to-all.
func (c *GraphComm) NeighborAlltoallInit(send, recv []byte, count int, dt *Datatype) (*PersistentColl, error) {
	return c.Comm.neighborAlltoallInit(send, recv, count, dt, c.sources, c.destinations)
}
