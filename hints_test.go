package gompi

import (
	"fmt"
	"testing"
)

var hintCfg = Config{Device: "ch4", Fabric: "inf", VCIs: 4}

// TestDupWithHintsCachesAssertions verifies the creation-time hint API:
// the duplicate carries the assertions, the parent does not, and a
// further Dup of the hinted communicator inherits them through the
// info-key path.
func TestDupWithHintsCachesAssertions(t *testing.T) {
	run(t, 2, hintCfg, func(p *Proc) error {
		w := p.World()
		h := CommHints{NoAnySource: true, NoAnyTag: true, ExactLength: true}
		d, err := w.DupWithHints(h)
		if err != nil {
			return err
		}
		if got := d.Hints(); got != h {
			return fmt.Errorf("hinted dup carries %+v, want %+v", got, h)
		}
		if got := w.Hints(); got != (CommHints{}) {
			return fmt.Errorf("world picked up hints %+v", got)
		}
		dd, err := d.Dup()
		if err != nil {
			return err
		}
		if got := dd.Hints(); got != h {
			return fmt.Errorf("dup of hinted comm carries %+v, want inherited %+v", got, h)
		}
		return nil
	})
}

// TestHintViolationsReturnErrHint pins the contract: an operation that
// breaks a communicator assertion fails with an ErrHint-classed error
// instead of silently degrading the channel mapping.
func TestHintViolationsReturnErrHint(t *testing.T) {
	run(t, 2, hintCfg, func(p *Proc) error {
		w := p.World()
		d, err := w.DupWithHints(CommHints{NoAnySource: true, NoAnyTag: true})
		if err != nil {
			return err
		}
		buf := make([]byte, 1)
		wantHint := func(op string, err error) error {
			if ClassOf(err) != ErrHint {
				return fmt.Errorf("%s on hinted comm: got %v (class %v), want ErrHint", op, err, ClassOf(err))
			}
			return nil
		}
		if _, err := d.Irecv(buf, 1, Byte, AnySource, 0); wantHint("Irecv AnySource", err) != nil {
			return wantHint("Irecv AnySource", err)
		}
		if _, err := d.Irecv(buf, 1, Byte, 1-p.Rank(), AnyTag); wantHint("Irecv AnyTag", err) != nil {
			return wantHint("Irecv AnyTag", err)
		}
		if _, _, err := d.Iprobe(AnySource, 0); wantHint("Iprobe AnySource", err) != nil {
			return wantHint("Iprobe AnySource", err)
		}
		if _, _, err := d.Improbe(1-p.Rank(), AnyTag); wantHint("Improbe AnyTag", err) != nil {
			return wantHint("Improbe AnyTag", err)
		}
		// Legal traffic on the same communicator still flows.
		peer := 1 - p.Rank()
		req, err := d.Isend([]byte{byte(p.Rank())}, 1, Byte, peer, 3)
		if err != nil {
			return err
		}
		st, err := d.Recv(buf, 1, Byte, peer, 3)
		if err != nil {
			return err
		}
		if st.Source != peer || buf[0] != byte(peer) {
			return fmt.Errorf("hinted exchange delivered src=%d payload=%d, want %d", st.Source, buf[0], peer)
		}
		_, err = req.Wait()
		return err
	})
}

// TestExactLengthHint pins the third assertion: a receive on an
// mpi_assert_exact_length communicator must be filled exactly — a short
// delivery surfaces as ErrHint at completion, an exact one succeeds,
// and a ProcNull receive (which legitimately completes with count 0)
// stays exempt.
func TestExactLengthHint(t *testing.T) {
	run(t, 2, hintCfg, func(p *Proc) error {
		w := p.World()
		d, err := w.DupWithHints(CommHints{ExactLength: true})
		if err != nil {
			return err
		}
		peer := 1 - p.Rank()
		// Exact fit: 4 bytes into a 4-byte buffer.
		if _, err := d.Isend([]byte{1, 2, 3, 4}, 4, Byte, peer, 0); err != nil {
			return err
		}
		// Short: 2 bytes toward a 4-byte buffer.
		if _, err := d.Isend([]byte{9, 9}, 2, Byte, peer, 1); err != nil {
			return err
		}
		exact := make([]byte, 4)
		if _, err := d.Recv(exact, 4, Byte, peer, 0); err != nil {
			return fmt.Errorf("exact-fit receive failed: %v", err)
		}
		short := make([]byte, 4)
		if _, err := d.Recv(short, 4, Byte, peer, 1); ClassOf(err) != ErrHint {
			return fmt.Errorf("short delivery on exact-length comm: got %v, want ErrHint", err)
		}
		if st, err := d.Recv(make([]byte, 4), 4, Byte, ProcNull, 0); err != nil || st.Count != 0 {
			return fmt.Errorf("ProcNull receive on exact-length comm: st=%+v err=%v", st, err)
		}
		return d.CommWaitall()
	})
}

// TestSplitWithHintsPinnedTraffic runs byte-verified traffic over
// SplitWithHints communicators under multiple VCIs: each split half
// asserts away wildcards, so its receives use a private interface, and
// the payloads must still land intact.
func TestSplitWithHintsPinnedTraffic(t *testing.T) {
	const n = 4
	run(t, n, hintCfg, func(p *Proc) error {
		w := p.World()
		h := CommHints{NoAnySource: true, NoAnyTag: true, ExactLength: true}
		s, err := w.SplitWithHints(p.Rank()%2, p.Rank(), h)
		if err != nil {
			return err
		}
		if got := s.Hints(); got != h {
			return fmt.Errorf("split carries %+v, want %+v", got, h)
		}
		peer := 1 - s.Rank() // pair up within each 2-rank half
		const msgs = 32
		reqs := make([]*Request, 0, msgs)
		for i := 0; i < msgs; i++ {
			req, err := s.Isend([]byte{byte(s.Rank()*msgs + i)}, 1, Byte, peer, i)
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		for i := msgs - 1; i >= 0; i-- {
			buf := make([]byte, 1)
			st, err := s.Recv(buf, 1, Byte, peer, i)
			if err != nil {
				return err
			}
			if want := byte(peer*msgs + i); buf[0] != want || st.Tag != i {
				return fmt.Errorf("msg %d: got payload=%d tag=%d, want %d/%d", i, buf[0], st.Tag, want, i)
			}
		}
		for _, req := range reqs {
			if _, err := req.Wait(); err != nil {
				return err
			}
		}
		return nil
	})
}
