package gompi

import (
	"gompi/internal/core"
	"gompi/internal/rma"
)

// Generalized active-target (PSCW) synchronization: MPI_WIN_POST /
// MPI_WIN_START / MPI_WIN_COMPLETE / MPI_WIN_WAIT. Exposure and access
// epochs are scoped to explicit rank groups instead of the whole
// communicator, so only the involved processes synchronize — the
// pattern stencil codes use to avoid full fences.
//
// The protocol runs at the MPI layer over the device's point-to-point
// on the collective context: post tokens flow target→origin, complete
// tokens origin→target. The complete token's arrival timestamp is at
// least the origin's flush time, so the target's clock (synced by its
// matching receive) correctly reflects the data it is about to read.

// Reserved tags on the collective context (the device-internal barrier
// uses 1<<20; collectives use 1..9).
const (
	tagWinPost     = 700
	tagWinComplete = 701
)

// Post opens an exposure epoch for the given origin ranks
// (MPI_WIN_POST). It does not block.
func (w *Win) Post(origins []int) error {
	w.p.chargeCall()
	if err := w.w.Expose(origins); err != nil {
		return errc(ErrRMASync, "%v", err)
	}
	cv := w.w.Comm.CollView()
	for _, o := range origins {
		if _, err := w.p.dev.Isend(nil, 0, Byte, o, tagWinPost, cv, core.FlagNoReq|core.FlagNoProcNull); err != nil {
			return errc(ErrRMASync, "post token to %d: %v", o, err)
		}
	}
	return nil
}

// Start opens an access epoch on the given target ranks
// (MPI_WIN_START). It blocks until every target has posted.
func (w *Win) Start(targets []int) error {
	w.p.chargeCall()
	if err := w.w.OpenEpoch(rma.EpochPSCW, -1); err != nil {
		return errc(ErrRMASync, "%v", err)
	}
	w.w.SetAccessGroup(targets)
	cv := w.w.Comm.CollView()
	for _, t := range targets {
		req, err := w.p.dev.Irecv(nil, 0, Byte, t, tagWinPost, cv, core.FlagNoProcNull)
		if err != nil {
			return errc(ErrRMASync, "post token from %d: %v", t, err)
		}
		req.Wait()
		req.Free()
	}
	return nil
}

// Complete closes the access epoch (MPI_WIN_COMPLETE): all issued
// operations complete at their targets before the targets' Wait
// returns.
func (w *Win) Complete() error {
	w.p.chargeCall()
	if w.w.Epoch != rma.EpochPSCW {
		return errc(ErrRMASync, "complete without start")
	}
	targets := w.w.AccessGroup()
	// Flush: RDMA is placed at injection; AM fallback waits for acks.
	for _, t := range targets {
		if err := w.p.dev.Flush(w.w, t); err != nil {
			return errc(ErrRMASync, "%v", err)
		}
	}
	cv := w.w.Comm.CollView()
	for _, t := range targets {
		if _, err := w.p.dev.Isend(nil, 0, Byte, t, tagWinComplete, cv, core.FlagNoReq|core.FlagNoProcNull); err != nil {
			return errc(ErrRMASync, "complete token to %d: %v", t, err)
		}
	}
	if _, err := w.w.CloseEpoch(); err != nil {
		return errc(ErrRMASync, "%v", err)
	}
	return nil
}

// Wait closes the exposure epoch (MPI_WIN_WAIT): it blocks until every
// origin in the post group has called Complete, after which the
// window's local memory reflects all their operations.
func (w *Win) Wait() error {
	w.p.chargeCall()
	origins, err := w.w.Unexpose()
	if err != nil {
		return errc(ErrRMASync, "%v", err)
	}
	cv := w.w.Comm.CollView()
	for _, o := range origins {
		req, err := w.p.dev.Irecv(nil, 0, Byte, o, tagWinComplete, cv, core.FlagNoProcNull)
		if err != nil {
			return errc(ErrRMASync, "complete token from %d: %v", o, err)
		}
		req.Wait()
		req.Free()
	}
	return nil
}

// TestWait is the nonblocking MPI_WIN_TEST: it reports whether the
// exposure epoch could be closed, closing it if so.
func (w *Win) TestWait() (bool, error) {
	if !w.w.Exposed() {
		return false, errc(ErrRMASync, "no exposure epoch")
	}
	// Probe for all complete tokens; only consume once all are there.
	w.p.dev.Progress()
	cv := w.w.Comm.CollView()
	pending := map[int]int{}
	for _, o := range w.w.ExposureGroupPeek() {
		pending[o]++
	}
	for o := range pending {
		if _, ok, err := w.p.dev.Iprobe(o, tagWinComplete, cv); err != nil {
			return false, errc(ErrRMASync, "%v", err)
		} else if !ok {
			return false, nil
		}
	}
	return true, w.Wait()
}
