package gompi

import (
	"gompi/internal/coll"
	"gompi/internal/comm"
	"gompi/internal/core"
	"gompi/internal/match"
	"gompi/internal/nbc"
	"gompi/internal/request"
	"gompi/internal/trace"
	"gompi/internal/vtime"
)

// CollAlgorithmKey is the communicator info key that pins collective
// algorithm selection (MPI_COMM_SET_INFO): values are the algorithm
// family names of Config.CollAlgorithm ("auto", "flat", "two-level",
// "binomial", "scatter-allgather", "rdouble", "rsag", "reduce-bcast",
// "chain", "ring", "bruck", "pairwise", "posted"). The info key takes
// precedence over Config.CollAlgorithm.
const CollAlgorithmKey = comm.HintCollAlgorithm

// Nonblocking-collective tags live above the blocking collectives'
// fixed tags (1..9) on the collective context: each I-collective call
// draws a fresh tag from a per-communicator sequence, so several
// schedules can be outstanding on one communicator without their
// traffic cross-matching (same-tag traffic of one schedule matches in
// FIFO order, which is exactly what fragment reassembly needs). The
// ranges are carved out in internal/match alongside the partitioned and
// persistent-collective tag spaces.
const (
	nbcTagBase = match.TagNBCBase
	nbcTagSpan = match.TagNBCSpan
)

// nbcPending adapts a device receive request to the schedule engine.
type nbcPending struct {
	r *request.Request
}

func (pd nbcPending) settle() error {
	trunc := pd.r.Status.Truncated
	pd.r.Free()
	if trunc {
		return errc(ErrTruncate, "nonblocking collective fragment truncated")
	}
	return nil
}

// Done implements nbc.Pending: a poll that pumps device progress.
func (pd nbcPending) Done() (bool, error) {
	if !pd.r.Done() {
		return false, nil
	}
	return true, pd.settle()
}

// Wait implements nbc.Pending: park until the fragment lands.
func (pd nbcPending) Wait() error {
	pd.r.Wait()
	return pd.settle()
}

// nbcPort adapts the device to the schedule engine: eager requestless
// sends and nonblocking matched receives on the communicator's
// collective context, plus the topology and protocol facts selection
// and segmentation need.
type nbcPort struct {
	p  *Proc
	cv *comm.Comm
}

// Rank implements nbc.Transport.
func (np nbcPort) Rank() int { return np.cv.MyRank }

// Size implements nbc.Transport.
func (np nbcPort) Size() int { return np.cv.Size() }

// Send implements nbc.Transport with a requestless eager send: the
// payload is captured at injection and the call never blocks, which is
// what makes schedule rounds deadlock-free.
func (np nbcPort) Send(data []byte, dest, tag int) error {
	_, err := np.p.dev.Isend(data, len(data), Byte, dest, tag, np.cv, core.FlagNoReq|core.FlagNoProcNull)
	return err
}

// Recv implements nbc.Transport with a nonblocking matched receive.
func (np nbcPort) Recv(buf []byte, src, tag int) (nbc.Pending, error) {
	r, err := np.p.dev.Irecv(buf, len(buf), Byte, src, tag, np.cv, core.FlagNoProcNull)
	if err != nil {
		return nil, err
	}
	return nbcPending{r: r}, nil
}

// Node implements nbc.Transport: communicator rank to node id, through
// the world mapping.
func (np nbcPort) Node(rank int) int {
	w, err := np.cv.WorldRank(rank)
	if err != nil {
		return 0
	}
	return np.p.rank.World().Node(w)
}

// EagerLimit implements nbc.Transport: the resolved fabric threshold,
// so schedules segment rather than rendezvous.
func (np nbcPort) EagerLimit() int { return np.p.eagerLimit }

// RanksPerNodeBlock implements nbc.BlockTopo: identity-table
// communicators inherit the world's contiguous block mapping
// node(r) = r/rpn, so two-level compilers can derive the node
// structure arithmetically instead of scanning all ranks.
func (np nbcPort) RanksPerNodeBlock() (int, bool) {
	if np.cv.Table.Kind() == comm.TableIdentity {
		return np.p.rank.World().RanksPerNode(), true
	}
	return 0, false
}

// LoadTopo / StoreTopo implement nbc.TopoCache on the communicator, so
// repeated collectives reuse the derived node structure.
func (np nbcPort) LoadTopo(key int) (any, bool) { return np.cv.LoadTopo(key) }
func (np nbcPort) StoreTopo(key int, v any)     { np.cv.StoreTopo(key, v) }

// HandoffEager implements nbc.HandoffTransport: the device's shm
// staged/handoff threshold, or 0 when the device has no zero-copy
// path (baseline device, handoff disabled).
func (np nbcPort) HandoffEager() int {
	if d, ok := np.p.dev.(interface{ ShmHandoffMax() int }); ok {
		return d.ShmHandoffMax()
	}
	return 0
}

// SendNoCopy implements nbc.HandoffTransport: lend data over the shm
// handoff path when the device offers one and the geometry applies
// (on-node peer, payload above the threshold). ok=false sends nothing
// and the schedule falls back to plain eager sends.
func (np nbcPort) SendNoCopy(data []byte, dest, tag int) (nbc.Pending, bool, error) {
	d, ok := np.p.dev.(interface {
		IsendNoCopy([]byte, int, int, *comm.Comm) (*request.Request, bool, error)
	})
	if !ok {
		return nil, false, nil
	}
	r, sent, err := d.IsendNoCopy(data, dest, tag, np.cv)
	if err != nil || !sent {
		return nil, false, err
	}
	return nbcPending{r: r}, true, nil
}

// RecvReduce implements nbc.ReduceTransport: post a receive that folds
// the incoming payload into acc in place. On a handoff-capable device
// the fold reads the sender's lent view directly — zero copies; on any
// other device it receives into scratch and folds at completion.
func (np nbcPort) RecvReduce(acc []byte, op coll.Op, elem *Datatype, src, tag int) (nbc.Pending, error) {
	if d, ok := np.p.dev.(interface {
		IrecvReduce([]byte, int, int, *comm.Comm, func(dst, incoming []byte)) (*request.Request, error)
	}); ok {
		r, err := d.IrecvReduce(acc, src, tag, np.cv, func(dst, incoming []byte) {
			coll.Apply(op, elem, dst, incoming)
		})
		if err != nil {
			return nil, err
		}
		return nbcPending{r: r}, nil
	}
	tmp := make([]byte, len(acc))
	r, err := np.p.dev.Irecv(tmp, len(tmp), Byte, src, tag, np.cv, core.FlagNoProcNull)
	if err != nil {
		return nil, err
	}
	return nbcFoldPending{r: r, acc: acc, tmp: tmp, op: op, elem: elem}, nil
}

// SegLimit implements nbc.Segmenter: on-node peers of a
// handoff-capable device are unsegmented (shm has no rendezvous to
// avoid, and whole payloads are what the handoff path lends); anything
// else keeps the flat eager limit. Symmetric in the pair, so senders
// and receivers derive identical fragment cuts.
func (np nbcPort) SegLimit(peer int) int {
	if np.HandoffEager() > 0 && np.Node(peer) == np.Node(np.cv.MyRank) {
		return 0
	}
	return np.p.eagerLimit
}

// nbcFoldPending is the RecvReduce fallback for devices without an
// in-place receive: the payload lands in tmp and folds into acc when
// the fragment settles.
type nbcFoldPending struct {
	r    *request.Request
	acc  []byte
	tmp  []byte
	op   coll.Op
	elem *Datatype
}

func (pd nbcFoldPending) settle() error {
	trunc := pd.r.Status.Truncated
	n := pd.r.Status.Count
	pd.r.Free()
	if trunc {
		return errc(ErrTruncate, "nonblocking collective fragment truncated")
	}
	if n > len(pd.acc) {
		n = len(pd.acc)
	}
	coll.Apply(pd.op, pd.elem, pd.acc[:n], pd.tmp[:n])
	return nil
}

// Done implements nbc.Pending.
func (pd nbcFoldPending) Done() (bool, error) {
	if !pd.r.Done() {
		return false, nil
	}
	return true, pd.settle()
}

// Wait implements nbc.Pending.
func (pd nbcFoldPending) Wait() error {
	pd.r.Wait()
	return pd.settle()
}

// nbcPort builds the transport adapter for one collective call.
func (c *Comm) nbcPort() nbcPort { return nbcPort{p: c.p, cv: c.c.CollView()} }

// nbcTag draws the next schedule tag from the communicator's sequence.
func (c *Comm) nbcTag() int { return nbcTagBase + c.c.NextNBCSeq()%nbcTagSpan }

// cachedStart runs one nonblocking collective through the
// communicator's schedule cache: on hit the compiled round structure is
// rewound and replayed against the caller's buffers (the prologue
// re-seeds accumulators); on miss build compiles and the result is
// cached for the next identical call. Every call consumes a fresh tag
// from the NBC sequence whether or not it hits: hit/miss can diverge
// across ranks (buffer identity is rank-local), so the sequence — and
// with it the matching tags — must advance in lockstep regardless.
func (c *Comm) cachedStart(key nbc.CacheKey, build func(tag int) (*nbc.Schedule, error)) (*Request, error) {
	tag := c.nbcTag()
	if s, ok := c.sched.Get(key); ok {
		c.p.rank.Metrics().NoteSchedCache(true)
		s.Reset(tag)
		return c.istart(s), nil
	}
	c.p.rank.Metrics().NoteSchedCache(false)
	s, err := build(tag)
	if err != nil {
		return nil, errc(ErrArg, "%v", err)
	}
	c.sched.Put(key, s)
	return c.istart(s), nil
}

// collForce resolves the pinned algorithm family for this
// communicator: the gompi_coll_algorithm info key wins over
// Config.CollAlgorithm; empty means automatic selection.
func (c *Comm) collForce() (nbc.Force, error) {
	raw := c.c.CollAlgo
	if raw == "" {
		raw = c.p.collAlgo
	}
	f, err := nbc.ParseForce(raw)
	if err != nil {
		return nbc.ForceAuto, errc(ErrArg, "%v", err)
	}
	return f, nil
}

// istart wraps a compiled schedule into a public Request progressed
// off the request engine: Test polls the schedule (issuing rounds and
// running local reduction steps as receives land), Wait drives it to
// completion parking on the transport. The first Done poll here kicks
// round 0's sends into flight before the call returns, so peers make
// progress even if this rank computes for a long time before waiting.
func (c *Comm) istart(s *nbc.Schedule) *Request {
	p := c.p
	p.noteColl(s.Algo, s.Bytes)
	if p.tlog.Enabled() {
		var roundStart vtime.Time
		bytes := s.Bytes
		s.OnRound = func(idx int, start bool) {
			if start {
				roundStart = p.rank.Now()
				return
			}
			p.tlog.Record(trace.Event{
				Kind: trace.KindSched, Peer: idx, Bytes: bytes, VCI: -1,
				Start: roundStart, End: p.rank.Now(),
			})
		}
	}
	r := &request.Request{Kind: request.KindColl}
	var collErr error
	r.Poll = func(rq *request.Request) bool {
		done, err := s.Test()
		if !done {
			return false
		}
		if err != nil && collErr == nil {
			collErr = err
		}
		rq.MarkComplete(request.Status{})
		return true
	}
	r.Block = func(rq *request.Request) {
		if err := s.Wait(); err != nil && collErr == nil {
			collErr = err
		}
		rq.MarkComplete(request.Status{})
	}
	req := &Request{r: r, p: p, collErr: &collErr}
	r.Done()
	return req
}

// Ibarrier starts a nonblocking barrier (MPI_IBARRIER): the returned
// request completes once every rank of the communicator has entered.
func (c *Comm) Ibarrier() (*Request, error) {
	done, err := c.collEnter()
	if err != nil {
		return nil, err
	}
	defer done()
	return c.istart(nbc.Barrier(c.nbcPort(), c.nbcTag())), nil
}

// Ibcast starts a nonblocking broadcast (MPI_IBCAST). Algorithm
// selection is size- and topology-based: two-level on hierarchical
// layouts, binomial tree for short messages, scatter+ring-allgather
// for long ones; pin it with CollAlgorithmKey or Config.CollAlgorithm.
func (c *Comm) Ibcast(buf []byte, count int, dt *Datatype, root int) (*Request, error) {
	done, err := c.collEnter()
	if err != nil {
		return nil, err
	}
	defer done()
	f, err := c.collForce()
	if err != nil {
		return nil, err
	}
	n := count * dt.Size()
	t := c.nbcPort()
	algo := nbc.SelectBcast(t, n, f)
	bp, bl := nbc.BufKey(buf[:n])
	key := nbc.CacheKey{Kind: nbc.CacheBcast, Algo: algo, Root: root, Recv: bp, RecvLen: bl}
	return c.cachedStart(key, func(tag int) (*nbc.Schedule, error) {
		return nbc.Bcast(t, tag, buf[:n], root, algo)
	})
}

// Ireduce starts a nonblocking reduction to root (MPI_IREDUCE). recv
// is consumed only on the root. Non-commutative operators fold in
// strict rank order (the chain algorithm).
func (c *Comm) Ireduce(send, recv []byte, count int, elem *Datatype, op Op, root int) (*Request, error) {
	done, err := c.collEnter()
	if err != nil {
		return nil, err
	}
	defer done()
	f, err := c.collForce()
	if err != nil {
		return nil, err
	}
	n := count * elem.Size()
	var out []byte
	if c.Rank() == root {
		out = recv[:n]
	}
	t := c.nbcPort()
	algo := nbc.SelectReduce(t, n, coll.Commutative(op), f)
	sp, sl := nbc.BufKey(send[:n])
	rp, rl := nbc.BufKey(out)
	key := nbc.CacheKey{Kind: nbc.CacheReduce, Algo: algo, Root: root, Op: uint8(op),
		Elem: nbc.PtrKey(elem), Send: sp, SendLen: sl, Recv: rp, RecvLen: rl}
	return c.cachedStart(key, func(tag int) (*nbc.Schedule, error) {
		return nbc.Reduce(t, tag, op, elem, send[:n], out, root, algo)
	})
}

// Iallreduce starts a nonblocking allreduce (MPI_IALLREDUCE).
// Selection: two-level on hierarchical layouts, recursive doubling for
// short messages on power-of-two worlds, Rabenseifner reduce-scatter +
// allgather for long ones, reduce+bcast otherwise; non-commutative
// operators always take the rank-ordered chain composition.
func (c *Comm) Iallreduce(send, recv []byte, count int, elem *Datatype, op Op) (*Request, error) {
	done, err := c.collEnter()
	if err != nil {
		return nil, err
	}
	defer done()
	f, err := c.collForce()
	if err != nil {
		return nil, err
	}
	n := count * elem.Size()
	t := c.nbcPort()
	algo := nbc.SelectAllreduce(t, count, elem.Size(), coll.Commutative(op), f)
	sp, sl := nbc.BufKey(send[:n])
	rp, rl := nbc.BufKey(recv[:n])
	key := nbc.CacheKey{Kind: nbc.CacheAllreduce, Algo: algo, Root: -1, Op: uint8(op),
		Elem: nbc.PtrKey(elem), Send: sp, SendLen: sl, Recv: rp, RecvLen: rl}
	return c.cachedStart(key, func(tag int) (*nbc.Schedule, error) {
		return nbc.Allreduce(t, tag, op, elem, send[:n], recv[:n], algo)
	})
}

// Iallgather starts a nonblocking allgather (MPI_IALLGATHER): Bruck
// for short blocks, ring for long ones.
func (c *Comm) Iallgather(send, recv []byte, count int, dt *Datatype) (*Request, error) {
	done, err := c.collEnter()
	if err != nil {
		return nil, err
	}
	defer done()
	f, err := c.collForce()
	if err != nil {
		return nil, err
	}
	n := count * dt.Size()
	if len(recv) < n*c.Size() {
		return nil, errc(ErrBuffer, "iallgather recv buffer %d < %d", len(recv), n*c.Size())
	}
	t := c.nbcPort()
	algo := nbc.SelectAllgather(t, n, f)
	sp, sl := nbc.BufKey(send[:n])
	rp, rl := nbc.BufKey(recv[:n*c.Size()])
	key := nbc.CacheKey{Kind: nbc.CacheAllgather, Algo: algo, Root: -1,
		Send: sp, SendLen: sl, Recv: rp, RecvLen: rl}
	return c.cachedStart(key, func(tag int) (*nbc.Schedule, error) {
		return nbc.Allgather(t, tag, send[:n], recv[:n*c.Size()], algo)
	})
}

// Ialltoall starts a nonblocking all-to-all exchange (MPI_IALLTOALL):
// all sends and receives posted in one round for small blocks on small
// worlds, pairwise exchange rounds otherwise.
func (c *Comm) Ialltoall(send, recv []byte, count int, dt *Datatype) (*Request, error) {
	done, err := c.collEnter()
	if err != nil {
		return nil, err
	}
	defer done()
	f, err := c.collForce()
	if err != nil {
		return nil, err
	}
	n := count * dt.Size()
	if len(send) < n*c.Size() || len(recv) < n*c.Size() {
		return nil, errc(ErrBuffer, "ialltoall buffers short")
	}
	t := c.nbcPort()
	algo := nbc.SelectAlltoall(t, n, f)
	sp, sl := nbc.BufKey(send[:n*c.Size()])
	rp, rl := nbc.BufKey(recv[:n*c.Size()])
	key := nbc.CacheKey{Kind: nbc.CacheAlltoall, Algo: algo, Root: -1,
		Send: sp, SendLen: sl, Recv: rp, RecvLen: rl}
	return c.cachedStart(key, func(tag int) (*nbc.Schedule, error) {
		return nbc.Alltoall(t, tag, send[:n*c.Size()], recv[:n*c.Size()], algo)
	})
}
