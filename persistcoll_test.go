package gompi

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestPersistentCollCorrectness replays each persistent collective
// several times with fresh buffer contents per round: the schedule
// prologue must re-seed accumulators from the live buffers, so every
// activation computes the round's values, not the first round's.
func TestPersistentCollCorrectness(t *testing.T) {
	const ranks = 4
	for _, dev := range []DeviceKind{DeviceCH4, DeviceOriginal} {
		t.Run(string(dev), func(t *testing.T) {
			run(t, ranks, Config{Device: dev, Fabric: "ofi", RanksPerNode: 2}, func(p *Proc) error {
				w := p.World()

				bbuf := make([]byte, 16)
				bcast, err := w.BcastInit(bbuf, 16, Byte, 1)
				if err != nil {
					return err
				}
				abuf := make([]byte, 8)
				ares := make([]byte, 8)
				allred, err := w.AllreduceInit(abuf, ares, 1, Long, OpSum)
				if err != nil {
					return err
				}
				asend := make([]byte, 8*ranks)
				arecv := make([]byte, 8*ranks)
				a2a, err := w.AlltoallInit(asend, arecv, 8, Byte)
				if err != nil {
					return err
				}

				for round := 0; round < 3; round++ {
					if p.Rank() == 1 {
						for i := range bbuf {
							bbuf[i] = byte(i ^ round)
						}
					}
					binary.LittleEndian.PutUint64(abuf, uint64(p.Rank()+round))
					for i := range asend {
						asend[i] = byte(p.Rank()*ranks + i/8 + round)
					}
					for _, op := range []*PersistentColl{bcast, allred, a2a} {
						if err := op.Start(); err != nil {
							return err
						}
						if err := op.Wait(); err != nil {
							return err
						}
					}
					for i := range bbuf {
						if bbuf[i] != byte(i^round) {
							return fmt.Errorf("round %d: bcast byte %d = %d", round, i, bbuf[i])
						}
					}
					wantSum := uint64(0)
					for r := 0; r < ranks; r++ {
						wantSum += uint64(r + round)
					}
					if got := binary.LittleEndian.Uint64(ares); got != wantSum {
						return fmt.Errorf("round %d: allreduce = %d, want %d", round, got, wantSum)
					}
					for src := 0; src < ranks; src++ {
						want := byte(src*ranks + p.Rank() + round)
						if arecv[src*8] != want {
							return fmt.Errorf("round %d: alltoall block %d = %d, want %d",
								round, src, arecv[src*8], want)
						}
					}
				}
				return nil
			})
		})
	}
}

// TestPersistentCollStateValidation: double Start and Wait/Test
// without an activation must fail cleanly.
func TestPersistentCollStateValidation(t *testing.T) {
	run(t, 2, Config{Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		buf := make([]byte, 8)
		op, err := w.BcastInit(buf, 8, Byte, 0)
		if err != nil {
			return err
		}
		if err := op.Wait(); err == nil {
			return fmt.Errorf("Wait accepted without Start")
		}
		if _, err := op.Test(); err == nil {
			return fmt.Errorf("Test accepted without Start")
		}
		if err := op.Start(); err != nil {
			return err
		}
		if err := op.Start(); err == nil {
			return fmt.Errorf("double Start accepted")
		}
		return op.Wait()
	})
}

// TestPersistentCollReplayZeroAlloc is the acceptance guard: after
// the first activation has warmed the pools, steady-state Start/Wait
// replays of a persistent allreduce must not allocate — the compiled
// schedule, the device's pooled receive descriptors, and the request
// freelists absorb everything. Mallocs are counted process-wide with
// every rank gated on atomics around the measured window, so the
// window contains nothing but replays. The same run checks that every
// Start is a schedule-cache hit.
func TestPersistentCollReplayZeroAlloc(t *testing.T) {
	const ranks = 4
	const replays = 50
	var armed, finished atomic.Int64
	var readGo, readDone atomic.Bool
	var mallocs uint64
	var st Stats
	cfg := Config{
		Device: DeviceCH4, Fabric: "ofi", RanksPerNode: 2,
		EagerPeers: true, Stats: &st,
	}
	run(t, ranks, cfg, func(p *Proc) error {
		w := p.World()
		send := make([]byte, 64)
		recv := make([]byte, 64)
		op, err := w.AllreduceInit(send, recv, 8, Long, OpSum)
		if err != nil {
			return err
		}
		// Two warm activations: the first send/recv of each peer pair
		// builds pooled descriptors and freelist entries; after this
		// the steady state is reached.
		for i := 0; i < 2; i++ {
			if err := op.Start(); err != nil {
				return err
			}
			if err := op.Wait(); err != nil {
				return err
			}
		}
		// Gate: every rank parks at the line, rank 0 reads the malloc
		// counter, then all enter the measured replays together.
		armed.Add(1)
		if p.Rank() == 0 {
			for armed.Load() != ranks {
				runtime.Gosched()
			}
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			mallocs = m.Mallocs
			readGo.Store(true)
		}
		for !readGo.Load() {
			runtime.Gosched()
		}
		for i := 0; i < replays; i++ {
			if err := op.Start(); err != nil {
				return err
			}
			if err := op.Wait(); err != nil {
				return err
			}
		}
		finished.Add(1)
		if p.Rank() == 0 {
			for finished.Load() != ranks {
				runtime.Gosched()
			}
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			mallocs = m.Mallocs - mallocs
			readDone.Store(true)
		}
		for !readDone.Load() {
			runtime.Gosched()
		}
		return nil
	})
	// The replay path itself must be allocation-free: any per-Start or
	// per-round allocation would show up as >= replays mallocs. A few
	// stray mallocs are tolerated because goroutine interleaving can
	// push a message-pool high-water mark one object deeper than the
	// warmup saw — a one-time growth, not a per-op cost.
	if mallocs > 8 {
		t.Errorf("steady-state replays allocated: %d mallocs over %d replays x %d ranks (want ~0/op)",
			mallocs, replays, ranks)
	}
	agg := st.Aggregate()
	// Every Start is a hit ((2 warm + replays) per rank); the only
	// misses are the Init-time compilations.
	wantHits := int64((2 + replays) * ranks)
	if agg.Sched.CacheHits != wantHits {
		t.Errorf("sched cache hits = %d, want %d", agg.Sched.CacheHits, wantHits)
	}
	if agg.Sched.CacheMisses != int64(ranks) {
		t.Errorf("sched cache misses = %d, want %d", agg.Sched.CacheMisses, ranks)
	}
}

// TestICollScheduleCacheHits: repeated nonblocking collectives on
// identical arguments hit the communicator's schedule cache — only the
// first call per shape compiles.
func TestICollScheduleCacheHits(t *testing.T) {
	const ranks = 4
	const calls = 5
	var st Stats
	run(t, ranks, Config{Fabric: "ofi", RanksPerNode: 2, Stats: &st}, func(p *Proc) error {
		w := p.World()
		send := make([]byte, 64)
		recv := make([]byte, 64)
		for i := 0; i < calls; i++ {
			req, err := w.Iallreduce(send, recv, 8, Long, OpSum)
			if err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
		}
		// A different buffer is a different schedule: no false hits.
		other := make([]byte, 64)
		req, err := w.Iallreduce(other, recv, 8, Long, OpSum)
		if err != nil {
			return err
		}
		_, err = req.Wait()
		return err
	})
	agg := st.Aggregate()
	if want := int64((calls - 1) * ranks); agg.Sched.CacheHits != want {
		t.Errorf("sched cache hits = %d, want %d", agg.Sched.CacheHits, want)
	}
	if want := int64(2 * ranks); agg.Sched.CacheMisses != want {
		t.Errorf("sched cache misses = %d, want %d", agg.Sched.CacheMisses, want)
	}
}

// TestPersistentCollWatchdogEdge parks three ranks in a persistent
// allreduce Wait while rank 0 never starts its activation, and checks
// the deadlock diagnosis labels the stalled receive edges with the
// persistent-coll tag class.
func TestPersistentCollWatchdogEdge(t *testing.T) {
	var diag bytes.Buffer
	cfg := Config{
		Device: DeviceCH4, Fabric: "ofi", RanksPerNode: 2,
		Watchdog:         true,
		WatchdogInterval: 5 * time.Millisecond,
		DiagWriter:       &diag,
	}
	err := Run(4, cfg, func(p *Proc) error {
		w := p.World()
		send := make([]byte, 8)
		recv := make([]byte, 8)
		op, err := w.AllreduceInit(send, recv, 1, Long, OpSum)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			return nil // never starts: the others stall in Wait
		}
		if err := op.Start(); err != nil {
			return err
		}
		return op.Wait()
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if !bytes.Contains(diag.Bytes(), []byte("[persistent-coll]")) {
		t.Errorf("diagnosis missing [persistent-coll] edge label:\n%s", diag.String())
	}
}
