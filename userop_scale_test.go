package gompi

import (
	"encoding/binary"
	"fmt"
	"testing"
)

// opAbsMax folds max(|a|,|b|) over int64 elements.
var opAbsMax = OpCreate(func(in, inout []byte, count int, elem *Datatype) error {
	if elem != Long {
		return fmt.Errorf("absmax supports MPI_LONG only")
	}
	for i := 0; i < count; i++ {
		a := int64(binary.LittleEndian.Uint64(in[8*i:]))
		b := int64(binary.LittleEndian.Uint64(inout[8*i:]))
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		if a > b {
			b = a
		}
		binary.LittleEndian.PutUint64(inout[8*i:], uint64(b))
	}
	return nil
}, true)

func TestUserDefinedOpInCollectives(t *testing.T) {
	const n = 5
	run(t, n, Config{Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		// Contributions -4..0: |max| = 4.
		send := Int64Bytes([]int64{int64(p.Rank()) - 4}, nil)
		recv := make([]byte, 8)
		if err := w.Allreduce(send, recv, 1, Long, opAbsMax); err != nil {
			return err
		}
		if got := BytesInt64(recv, nil)[0]; got != 4 {
			return fmt.Errorf("absmax allreduce = %d", got)
		}
		// Also through Reduce and ReduceLocal.
		if err := w.Reduce(send, recv, 1, Long, opAbsMax, 0); err != nil {
			return err
		}
		if p.Rank() == 0 {
			if got := BytesInt64(recv, nil)[0]; got != 4 {
				return fmt.Errorf("absmax reduce = %d", got)
			}
		}
		local := Int64Bytes([]int64{-7}, nil)
		if err := ReduceLocal(send, local, 1, Long, opAbsMax); err != nil {
			return err
		}
		if got := BytesInt64(local, nil)[0]; got != 7 {
			return fmt.Errorf("absmax reduce_local = %d", got)
		}
		return nil
	})
}

func TestUserDefinedOpInAccumulate(t *testing.T) {
	run(t, 2, Config{}, func(p *Proc) error {
		w := p.World()
		win, mem, err := w.WinAllocate(8, 1)
		if err != nil {
			return err
		}
		if p.Rank() == 1 {
			copy(mem, Int64Bytes([]int64{-3}, nil))
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			if err := win.Accumulate(Int64Bytes([]int64{2}, nil), 1, Long, 1, 0, opAbsMax); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 1 {
			if got := BytesInt64(mem, nil)[0]; got != 3 {
				return fmt.Errorf("absmax accumulate = %d", got)
			}
		}
		return win.Free()
	})
}

func TestUserDefinedOpErrorPropagates(t *testing.T) {
	if err := ReduceLocal(make([]byte, 8), make([]byte, 8), 1, Double, opAbsMax); err == nil {
		t.Fatal("user op type error swallowed")
	}
}

// TestLargeWorldSmoke drives 64 ranks through the full stack: the
// goroutine runtime, context management, collectives, and pt2pt all at
// once.
func TestLargeWorldSmoke(t *testing.T) {
	const n = 64
	run(t, n, Config{Fabric: "ofi", RanksPerNode: 8}, func(p *Proc) error {
		w := p.World()
		// Allreduce across all 64.
		vals, err := w.AllreduceFloat64([]float64{1}, OpSum)
		if err != nil {
			return err
		}
		if vals[0] != n {
			return fmt.Errorf("allreduce = %v", vals[0])
		}
		// Ring shift.
		right := (p.Rank() + 1) % n
		left := (p.Rank() - 1 + n) % n
		out := []byte{byte(p.Rank())}
		in := make([]byte, 1)
		if _, err := w.Sendrecv(out, 1, Byte, right, 0, in, 1, Byte, left, 0); err != nil {
			return err
		}
		if in[0] != byte(left) {
			return fmt.Errorf("ring got %d", in[0])
		}
		// Split into 8 node communicators and allgather within.
		node, err := w.SplitType(SplitTypeShared, p.Rank())
		if err != nil {
			return err
		}
		mine := []byte{byte(p.Rank())}
		all := make([]byte, node.Size())
		if err := node.Allgather(mine, all, 1, Byte); err != nil {
			return err
		}
		base := (p.Rank() / 8) * 8
		for i := range all {
			if all[i] != byte(base+i) {
				return fmt.Errorf("node allgather %v", all)
			}
		}
		// Gather everything on rank 0 of the world.
		full := make([]byte, n)
		if err := w.Gather(mine, full, 1, Byte, 0); err != nil {
			return err
		}
		if p.Rank() == 0 {
			for i := range full {
				if full[i] != byte(i) {
					return fmt.Errorf("gather %v", full[:8])
				}
			}
		}
		return w.Barrier()
	})
}
