package gompi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestEfficiencyImbalanced pins Load Balance on a deliberately
// imbalanced run: rank r charges (r+1)×100000 compute cycles and
// nothing else, then all ranks barrier so every clock ends at the
// slowest rank's. avg useful = 250000, max useful = 400000, so
// LB = 0.625 exactly — the same hand-derived value the internal/pop
// unit test pins, here produced end-to-end through RunStats.
func TestEfficiencyImbalanced(t *testing.T) {
	st, err := RunStats(4, Config{Device: DeviceCH4, Fabric: FabricOFI, RanksPerNode: 2},
		func(p *Proc) error {
			p.ChargeCompute(int64(p.Rank()+1) * 100000)
			return p.World().Barrier()
		})
	if err != nil {
		t.Fatal(err)
	}
	rep := st.Efficiency()
	if rep.Ranks != 4 || rep.Excluded != 0 {
		t.Fatalf("ranks=%d excluded=%d", rep.Ranks, rep.Excluded)
	}
	if rep.LoadBalance != 0.625 {
		t.Fatalf("LB = %g, want exactly 0.625 (avg 250000 / max 400000)", rep.LoadBalance)
	}
	if rep.AvgUsefulCycles != 250000 || rep.MaxUsefulCycles != 400000 {
		t.Fatalf("useful avg=%g max=%d", rep.AvgUsefulCycles, rep.MaxUsefulCycles)
	}
	checkUnit(t, rep.Metrics)
}

// checkUnit fails the test when any efficiency leaves [0,1].
func checkUnit(t *testing.T, m EfficiencyMetrics) {
	t.Helper()
	for name, v := range map[string]float64{
		"PE": m.ParallelEff, "LB": m.LoadBalance, "CommE": m.CommEff,
		"SerE": m.SerEff, "TE": m.TransferEff,
	} {
		if v < 0 || v > 1 {
			t.Fatalf("%s = %g outside [0,1] (%+v)", name, v, m)
		}
	}
}

// TestEfficiencyExcludesDeadSlots verifies the Valid flag does its job:
// a zero slot (as left by a rank that died by panic) is excluded from
// the efficiency math instead of read as a perfectly-idle rank.
func TestEfficiencyExcludesDeadSlots(t *testing.T) {
	st := &Stats{Hz: 2.2e9, Ranks: []RankStats{
		{Rank: 0, Valid: true, VirtualCycles: 1000, Counters: Counters{Compute: 800}},
		{Rank: 1}, // dead slot: Valid false, all zero
		{Rank: 2, Valid: true, VirtualCycles: 1000, Counters: Counters{Compute: 800}},
	}}
	rep := st.Efficiency()
	if rep.Ranks != 2 || rep.Excluded != 1 {
		t.Fatalf("ranks=%d excluded=%d, want 2 valid / 1 excluded", rep.Ranks, rep.Excluded)
	}
	if rep.LoadBalance != 1.0 {
		t.Fatalf("LB = %g with a dead slot, want 1.0", rep.LoadBalance)
	}
	var buf bytes.Buffer
	if err := st.WriteEfficiencyReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 dead slot(s) excluded") {
		t.Fatalf("report does not note the exclusion:\n%s", buf.String())
	}
}

// TestRunStatsMarksValid verifies teardown sets the flag on every slot
// a finished rank filled.
func TestRunStatsMarksValid(t *testing.T) {
	st, err := RunStats(2, Config{}, func(p *Proc) error { return p.World().Barrier() })
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range st.Ranks {
		if !r.Valid {
			t.Fatalf("rank %d finished but Valid=false", i)
		}
	}
}

// TestPhaseRegions exercises the phase API: accumulation across calls,
// nesting, useful/transport attribution, and the teardown snapshot.
func TestPhaseRegions(t *testing.T) {
	st, err := RunStats(2, Config{Device: DeviceCH4, RanksPerNode: 2},
		func(p *Proc) error {
			w := p.World()
			peer := 1 - p.Rank()
			buf := make([]byte, 256)
			for i := 0; i < 3; i++ {
				if err := p.Phase("compute", func() error {
					p.ChargeCompute(1000)
					return nil
				}); err != nil {
					return err
				}
			}
			p.PhaseBegin("outer")
			p.PhaseBegin("exchange")
			r, err := w.Irecv(buf, len(buf), Byte, peer, 7)
			if err != nil {
				return err
			}
			if err := w.Send(buf, len(buf), Byte, peer, 7); err != nil {
				return err
			}
			if _, err := r.Wait(); err != nil {
				return err
			}
			p.PhaseEnd()
			p.PhaseEnd()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for rank, rs := range st.Ranks {
		byName := map[string]PhaseStats{}
		for _, ph := range rs.Phases {
			byName[ph.Name] = ph
		}
		c, ok := byName["compute"]
		if !ok || c.Calls != 3 {
			t.Fatalf("rank %d: compute phase %+v (phases %+v)", rank, c, rs.Phases)
		}
		if c.UsefulCycles != 3000 || c.Cycles < 3000 {
			t.Fatalf("rank %d: compute attribution %+v, want 3000 useful", rank, c)
		}
		ex, ok := byName["exchange"]
		if !ok || ex.Calls != 1 || ex.MPIInstr == 0 || ex.UsefulCycles != 0 {
			t.Fatalf("rank %d: exchange phase %+v", rank, ex)
		}
		// The nested region's cycles also land in the enclosing one.
		outer := byName["outer"]
		if outer.Cycles < ex.Cycles || outer.MPIInstr < ex.MPIInstr {
			t.Fatalf("rank %d: outer %+v does not cover nested exchange %+v", rank, outer, ex)
		}
	}
	rep := st.Efficiency()
	if len(rep.Phases) != 3 {
		t.Fatalf("report has %d phase rows, want 3: %+v", len(rep.Phases), rep.Phases)
	}
	for _, ph := range rep.Phases {
		checkUnit(t, ph.Metrics)
	}
	// The compute phase was perfectly balanced across the two ranks.
	for _, ph := range rep.Phases {
		if ph.Name == "compute" && ph.LoadBalance != 1.0 {
			t.Fatalf("balanced compute phase LB = %g", ph.LoadBalance)
		}
	}
}

// TestPhaseEndUnmatchedPanics pins the contract on a stray PhaseEnd.
func TestPhaseEndUnmatchedPanics(t *testing.T) {
	err := Run(1, Config{}, func(p *Proc) error {
		defer func() {
			if recover() == nil {
				t.Error("PhaseEnd without PhaseBegin did not panic")
			}
		}()
		p.PhaseEnd()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPhaseLeftOpenStillAttributed verifies teardown closes regions the
// body left open, so their cycles still reach the snapshot.
func TestPhaseLeftOpenStillAttributed(t *testing.T) {
	st, err := RunStats(1, Config{}, func(p *Proc) error {
		p.PhaseBegin("dangling")
		p.ChargeCompute(500)
		return nil // no PhaseEnd
	})
	if err != nil {
		t.Fatal(err)
	}
	phases := st.Ranks[0].Phases
	if len(phases) != 1 || phases[0].Name != "dangling" || phases[0].UsefulCycles != 500 {
		t.Fatalf("dangling phase not closed at teardown: %+v", phases)
	}
}

// TestPhaseTraceEvents verifies phase regions land in the trace log and
// render into the Chrome document as spans plus counter tracks.
func TestPhaseTraceEvents(t *testing.T) {
	st, err := RunStats(1, Config{Trace: true}, func(p *Proc) error {
		return p.Phase("step", func() error {
			p.ChargeCompute(100)
			return p.World().Barrier()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	events := st.TraceEvents(0)
	var phase *TraceEvent
	for i := range events {
		if events[i].Kind.String() == "phase" {
			phase = &events[i]
		}
	}
	if phase == nil {
		t.Fatal("no phase event recorded")
	}
	if phase.Name != "step" || phase.Useful != 100 || phase.Comm <= 0 {
		t.Fatalf("phase event %+v", phase)
	}
	var buf bytes.Buffer
	if err := st.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	span, counter := false, false
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Name == "phase:step" {
			span = true
		}
		if e.Ph == "C" && strings.Contains(e.Name, "phase cycles") {
			counter = true
		}
	}
	if !span || !counter {
		t.Fatalf("chrome trace span=%v counter=%v, want both", span, counter)
	}
}

// TestPromEfficiencyGauges verifies the Prometheus exposition includes
// the run-level gauges and a labeled series per phase.
func TestPromEfficiencyGauges(t *testing.T) {
	st, err := RunStats(2, Config{}, func(p *Proc) error {
		return p.Phase("work", func() error {
			p.ChargeCompute(1000)
			return p.World().Barrier()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE gompi_efficiency_parallel gauge",
		"gompi_efficiency_load_balance ",
		"gompi_efficiency_serialization ",
		"gompi_efficiency_transfer ",
		`gompi_efficiency_parallel{phase="work"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

// TestEfficiencyJSONShape round-trips WriteEfficiencyJSON and checks
// the documented keys benchdiff parses.
func TestEfficiencyJSONShape(t *testing.T) {
	st, err := RunStats(2, Config{}, func(p *Proc) error {
		return p.Phase("work", func() error {
			p.ChargeCompute(100)
			return p.World().Barrier()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WriteEfficiencyJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Ranks       int      `json:"ranks"`
		ParallelEff *float64 `json:"parallel_efficiency"`
		LoadBalance *float64 `json:"load_balance"`
		Phases      []struct {
			Name string `json:"name"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Ranks != 2 || doc.ParallelEff == nil || doc.LoadBalance == nil {
		t.Fatalf("efficiency JSON shape: %s", buf.String())
	}
	if len(doc.Phases) != 1 || doc.Phases[0].Name != "work" {
		t.Fatalf("phase rows: %s", buf.String())
	}
}

// TestEfficiencyDeterministic pins that the whole report repeats
// bit-identically across runs — the property the benchdiff gate's
// zero-noise-tolerance comparison relies on.
func TestEfficiencyDeterministic(t *testing.T) {
	body := func(p *Proc) error {
		return p.Phase("work", func() error {
			p.ChargeCompute(int64(p.Rank()+1) * 5000)
			return p.World().Barrier()
		})
	}
	var first string
	for i := 0; i < 3; i++ {
		st, err := RunStats(4, Config{Device: DeviceCH4, RanksPerNode: 2}, body)
		if err != nil {
			t.Fatal(err)
		}
		got := fmt.Sprintf("%+v", st.Efficiency())
		if i == 0 {
			first = got
		} else if got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}
