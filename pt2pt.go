package gompi

import (
	"runtime"

	"gompi/internal/core"
	"gompi/internal/request"
)

// trace kind aliases keep the hot paths free of package-qualified
// constants.
const (
	traceSendKind = TraceSend
	traceRecvKind = TraceRecv
	traceWaitKind = TraceWait
)

// traceBytes sizes a traced payload without assuming the (not yet
// validated) datatype is non-nil.
func traceBytes(count int, dt *Datatype) int {
	if dt == nil || count < 0 {
		return 0
	}
	return count * dt.Size()
}

// Special rank and tag values.
const (
	// ProcNull is MPI_PROC_NULL: communication addressed to it is
	// discarded.
	ProcNull = core.ProcNull
	// AnySource is the MPI_ANY_SOURCE receive wildcard.
	AnySource = core.AnySource
	// AnyTag is the MPI_ANY_TAG receive wildcard.
	AnyTag = core.AnyTag
)

// Status reports a completed operation's envelope (MPI_Status).
type Status struct {
	Source int
	Tag    int
	Count  int // bytes delivered
}

// GetCount returns the number of dt elements the operation delivered
// (MPI_GET_COUNT): UndefinedIndex when the byte count is not a whole
// number of elements.
func (st Status) GetCount(dt *Datatype) int {
	if dt == nil || dt.Size() == 0 {
		if st.Count == 0 {
			return 0
		}
		return UndefinedIndex
	}
	if st.Count%dt.Size() != 0 {
		return UndefinedIndex
	}
	return st.Count / dt.Size()
}

// Request tracks a nonblocking operation (MPI_Request).
type Request struct {
	r *request.Request
	p *Proc

	// exact/exactLen carry the receive's expected byte count when the
	// communicator asserted ExactLength; completion verifies the
	// delivery against it.
	exact    bool
	exactLen int

	// collErr, on nonblocking-collective requests, points at the
	// schedule's latched first error; finish surfaces it.
	collErr *error
}

// finish converts a completed internal request's status, enforcing
// the exact-length assertion when the receive's communicator carried
// it.
func (r *Request) finish(st request.Status) (Status, error) {
	err := statusErr(st.Truncated)
	if r.exact && (st.Truncated || st.Count != r.exactLen) {
		err = errc(ErrHint, "delivery of %d bytes into an exact-length buffer of %d", st.Count, r.exactLen)
	}
	if r.collErr != nil && *r.collErr != nil {
		err = *r.collErr
	}
	return Status{Source: st.Source, Tag: st.Tag, Count: st.Count}, err
}

// Wait blocks until the operation completes (MPI_WAIT).
func (r *Request) Wait() (Status, error) {
	if r == nil || r.r == nil {
		return Status{}, nil // requestless (no-req) operations
	}
	if r.p != nil {
		if end := r.p.span(traceWaitKind, -1, 0); end != nil {
			defer end()
		}
	}
	r.r.Wait()
	st, err := r.finish(r.r.Status)
	r.r.Free()
	r.r = nil
	return st, err
}

// Test polls the operation (MPI_TEST). An unsuccessful poll yields the
// processor: ranks are goroutines, so a rank spinning MPI_TEST on an
// oversubscribed machine would otherwise starve the very peers whose
// sends it is polling for — the same reason real MPI progress loops
// call sched_yield when ranks outnumber cores.
func (r *Request) Test() (Status, bool, error) {
	if r == nil || r.r == nil {
		return Status{}, true, nil
	}
	if !r.r.Done() {
		runtime.Gosched()
		return Status{}, false, nil
	}
	st, err := r.finish(r.r.Status)
	r.r.Free()
	r.r = nil
	return st, true, err
}

// Waitall completes every request (MPI_WAITALL). The first error is
// returned after all requests finish.
func Waitall(reqs []*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// isend is the shared MPI-layer send path: charge the MPI-layer rows of
// Table 1 (call, thread check, error checking) and descend into the
// device with the extension flags.
func (c *Comm) isend(buf []byte, count int, dt *Datatype, dest, tag int, flags core.OpFlags) (*Request, error) {
	p := c.p
	if end := p.spanVCI(traceSendKind, dest, traceBytes(count, dt), p.vciOf(c, tag, false)); end != nil {
		defer end()
	}
	p.chargeCall()
	unlock := p.chargeThread(c.c, false)
	defer unlock()
	if p.bc.ErrorChecking {
		if err := p.checkSendArgs(buf, count, dt, dest, tag, c, false); err != nil {
			return nil, err
		}
	}
	r, err := p.dev.Isend(buf, count, dt, dest, tag, c.c, flags)
	if err != nil {
		return nil, errc(ErrOther, "%v", err)
	}
	if r == nil {
		return nil, nil
	}
	return &Request{r: r, p: p}, nil
}

// Isend starts a nonblocking send (MPI_ISEND).
func (c *Comm) Isend(buf []byte, count int, dt *Datatype, dest, tag int) (*Request, error) {
	return c.isend(buf, count, dt, dest, tag, 0)
}

// Send performs a blocking send (MPI_SEND). The eager protocol makes
// local completion immediate.
func (c *Comm) Send(buf []byte, count int, dt *Datatype, dest, tag int) error {
	req, err := c.Isend(buf, count, dt, dest, tag)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

// SendOptions combines the Section 3 proposals for one send. The
// paper's proposals compose (Section 3.7); IsendOpt is the canonical
// entry point and lets applications opt into any subset. The named
// Isend* variants below are thin wrappers over it.
type SendOptions struct {
	// GlobalRank: dest is an MPI_COMM_WORLD rank (Section 3.1).
	GlobalRank bool
	// NoProcNull: dest is guaranteed not MPI_PROC_NULL (Section 3.4).
	NoProcNull bool
	// NoReq: no request object; complete via CommWaitall (Section 3.5).
	NoReq bool
	// NoMatch: arrival-order matching (Section 3.6).
	NoMatch bool
	// PredefComm: the caller guarantees the communicator sits in a
	// predefined handle slot, so the device replaces the communicator
	// dereference with a constant-indexed load (Section 3.3). Set
	// automatically by IsendPredef and IsendAllOpts.
	PredefComm bool
}

// AllSendOptions is the full Section 3.7 combination — every proposal
// at once. Passing it to IsendOpt (with a byte-typed, full-buffer
// send) takes the fused MPI_ISEND_ALL_OPTS path.
var AllSendOptions = SendOptions{
	GlobalRank: true, NoProcNull: true, NoReq: true, NoMatch: true, PredefComm: true,
}

func (o SendOptions) flags() core.OpFlags {
	var f core.OpFlags
	if o.GlobalRank {
		f |= core.FlagGlobalRank
	}
	if o.NoProcNull {
		f |= core.FlagNoProcNull
	}
	if o.NoReq {
		f |= core.FlagNoReq
	}
	if o.NoMatch {
		f |= core.FlagNoMatch
	}
	if o.PredefComm {
		f |= core.FlagPredefComm
	}
	return f
}

// IsendOpt starts a nonblocking send with any combination of the
// proposed extensions. Under NoReq the returned request is nil (use
// CommWaitall). When every option is set (AllSendOptions) on a plain
// byte send covering the whole buffer, the call routes to the
// dedicated fused device path — the Section 3.7 specialized function —
// and skips the generic MPI-layer charges entirely.
func (c *Comm) IsendOpt(buf []byte, count int, dt *Datatype, dest, tag int, o SendOptions) (*Request, error) {
	if o == AllSendOptions && dt == Byte && count == len(buf) {
		p := c.p
		if end := p.span(traceSendKind, dest, len(buf)); end != nil {
			defer end()
		}
		// No call-frame or validation charges: the all-opts path is
		// defined as a link-time-inlined specialized function.
		if err := p.dev.IsendAllOpts(buf, dest, c.c); err != nil {
			return nil, errc(ErrOther, "%v", err)
		}
		return nil, nil
	}
	return c.isend(buf, count, dt, dest, tag, o.flags())
}

// IsendGlobal is the MPI_ISEND_GLOBAL proposal (Section 3.1): dest is
// an MPI_COMM_WORLD rank and communicator rank translation is skipped.
// Not intercommunicator-safe, exactly as the paper specifies.
// Equivalent to IsendOpt with SendOptions{GlobalRank: true}.
func (c *Comm) IsendGlobal(buf []byte, count int, dt *Datatype, worldDest, tag int) (*Request, error) {
	return c.IsendOpt(buf, count, dt, worldDest, tag, SendOptions{GlobalRank: true})
}

// IsendNPN is the MPI_ISEND_NPN proposal (Section 3.4): the caller
// guarantees dest is not MPI_PROC_NULL, eliding the check. Equivalent
// to IsendOpt with SendOptions{NoProcNull: true}.
func (c *Comm) IsendNPN(buf []byte, count int, dt *Datatype, dest, tag int) (*Request, error) {
	return c.IsendOpt(buf, count, dt, dest, tag, SendOptions{NoProcNull: true})
}

// IsendNoReq is the MPI_ISEND_NOREQ proposal (Section 3.5): no request
// object is returned; completion is collected by CommWaitall.
// Equivalent to IsendOpt with SendOptions{NoReq: true}.
func (c *Comm) IsendNoReq(buf []byte, count int, dt *Datatype, dest, tag int) error {
	_, err := c.IsendOpt(buf, count, dt, dest, tag, SendOptions{NoReq: true})
	return err
}

// IsendNoReqGlobal composes the requestless and global-rank proposals
// (Sections 3.1 + 3.5): a world-rank destination with counter
// completion, the cheapest pairwise combination short of the fused
// path. Equivalent to IsendOpt with SendOptions{GlobalRank: true,
// NoReq: true}.
func (c *Comm) IsendNoReqGlobal(buf []byte, count int, dt *Datatype, worldDest, tag int) error {
	_, err := c.IsendOpt(buf, count, dt, worldDest, tag, SendOptions{GlobalRank: true, NoReq: true})
	return err
}

// IsendNoMatch is the MPI_ISEND_NOMATCH proposal (Section 3.6): source
// and tag match bits are disabled; the message matches receives in
// arrival order within the communicator. Equivalent to IsendOpt with
// SendOptions{NoMatch: true} and tag 0.
func (c *Comm) IsendNoMatch(buf []byte, count int, dt *Datatype, dest int) (*Request, error) {
	return c.IsendOpt(buf, count, dt, dest, 0, SendOptions{NoMatch: true})
}

// IsendPredef sends on a communicator installed in a predefined handle
// slot (Section 3.3): the communicator reference is a constant-indexed
// global load. Equivalent to resolving the handle and calling IsendOpt
// with SendOptions{PredefComm: true}.
func (p *Proc) IsendPredef(h CommHandle, buf []byte, count int, dt *Datatype, dest, tag int) (*Request, error) {
	c := p.predef[h]
	if c == nil {
		return nil, errc(ErrComm, "predefined handle %d not populated", h)
	}
	return c.IsendOpt(buf, count, dt, dest, tag, SendOptions{PredefComm: true})
}

// IsendAllOpts is the MPI_ISEND_ALL_OPTS path (Section 3.7): every
// proposal fused — world-rank destination, predefined communicator
// handle, no PROC_NULL, counter completion, arrival-order matching.
// With the inlined build this is the 16-instruction path. Equivalent
// to resolving the handle and calling IsendOpt with AllSendOptions.
func (p *Proc) IsendAllOpts(h CommHandle, buf []byte, worldDest int) error {
	c := p.predef[h]
	if c == nil {
		return errc(ErrComm, "predefined handle %d not populated", h)
	}
	_, err := c.IsendOpt(buf, len(buf), Byte, worldDest, 0, AllSendOptions)
	return err
}

// CommWaitall completes all requestless operations on the communicator
// (the MPI_COMM_WAITALL proposal).
func (c *Comm) CommWaitall() error {
	if err := c.p.dev.CommWaitall(c.c); err != nil {
		return errc(ErrOther, "%v", err)
	}
	return nil
}

// irecv is the shared MPI-layer receive path. Hint enforcement rides
// here: a wildcard contradicting the communicator's assertions is a
// defined error (ErrHint) before anything reaches the device, and the
// exact-length assertion arms the returned request's completion check.
func (c *Comm) irecv(buf []byte, count int, dt *Datatype, src, tag int, flags core.OpFlags) (*Request, error) {
	p := c.p
	if end := p.spanVCI(traceRecvKind, src, traceBytes(count, dt), p.vciOf(c, tag, true)); end != nil {
		defer end()
	}
	p.chargeCall()
	unlock := p.chargeThread(c.c, false)
	defer unlock()
	if p.bc.ErrorChecking {
		if err := p.checkSendArgs(buf, count, dt, src, tag, c, true); err != nil {
			return nil, err
		}
	}
	if err := checkHints(c.c, src, tag); err != nil {
		return nil, err
	}
	r, err := p.dev.Irecv(buf, count, dt, src, tag, c.c, flags)
	if err != nil {
		return nil, errc(ErrOther, "%v", err)
	}
	req := &Request{r: r, p: p}
	if c.c.Hints.ExactLength && src != ProcNull {
		req.exact, req.exactLen = true, dtPackedSize(dt, count)
	}
	return req, nil
}

// Irecv starts a nonblocking receive (MPI_IRECV). src may be AnySource;
// tag may be AnyTag.
func (c *Comm) Irecv(buf []byte, count int, dt *Datatype, src, tag int) (*Request, error) {
	return c.irecv(buf, count, dt, src, tag, 0)
}

// RecvOptions combines the Section 3 proposals that apply to the
// receive side, mirroring SendOptions: IrecvOpt is the canonical entry
// point and the named Irecv* variants are zero-overhead wrappers over
// it. (GlobalRank and NoReq are send-side ideas: receives match on the
// sender's communicator rank and must deliver an envelope, so neither
// transfers.)
type RecvOptions struct {
	// NoProcNull: src is guaranteed not MPI_PROC_NULL (Section 3.4).
	NoProcNull bool
	// NoMatch: receive in arrival order within the communicator — the
	// receive side of the Section 3.6 proposal.
	NoMatch bool
	// PredefComm: the communicator sits in a predefined handle slot
	// (Section 3.3). Set automatically by IrecvPredef.
	PredefComm bool
}

func (o RecvOptions) flags() core.OpFlags {
	var f core.OpFlags
	if o.NoProcNull {
		f |= core.FlagNoProcNull
	}
	if o.NoMatch {
		f |= core.FlagNoMatch
	}
	if o.PredefComm {
		f |= core.FlagPredefComm
	}
	return f
}

// IrecvOpt starts a nonblocking receive with any combination of the
// proposed receive-side extensions.
func (c *Comm) IrecvOpt(buf []byte, count int, dt *Datatype, src, tag int, o RecvOptions) (*Request, error) {
	return c.irecv(buf, count, dt, src, tag, o.flags())
}

// IrecvNPN is the receive-side MPI_IRECV_NPN variant (Section 3.4):
// the caller guarantees src is not MPI_PROC_NULL. Equivalent to
// IrecvOpt with RecvOptions{NoProcNull: true}.
func (c *Comm) IrecvNPN(buf []byte, count int, dt *Datatype, src, tag int) (*Request, error) {
	return c.IrecvOpt(buf, count, dt, src, tag, RecvOptions{NoProcNull: true})
}

// IrecvNoMatch starts an arrival-order receive (the nonblocking
// receive side of the no-match proposal). Equivalent to IrecvOpt with
// RecvOptions{NoMatch: true} and wildcard envelope.
func (c *Comm) IrecvNoMatch(buf []byte, count int, dt *Datatype) (*Request, error) {
	return c.IrecvOpt(buf, count, dt, AnySource, AnyTag, RecvOptions{NoMatch: true})
}

// IrecvPredef receives on a communicator installed in a predefined
// handle slot (Section 3.3). Equivalent to resolving the handle and
// calling IrecvOpt with RecvOptions{PredefComm: true}.
func (p *Proc) IrecvPredef(h CommHandle, buf []byte, count int, dt *Datatype, src, tag int) (*Request, error) {
	c := p.predef[h]
	if c == nil {
		return nil, errc(ErrComm, "predefined handle %d not populated", h)
	}
	return c.IrecvOpt(buf, count, dt, src, tag, RecvOptions{PredefComm: true})
}

// Recv performs a blocking receive (MPI_RECV).
func (c *Comm) Recv(buf []byte, count int, dt *Datatype, src, tag int) (Status, error) {
	req, err := c.Irecv(buf, count, dt, src, tag)
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}

// RecvNoMatch receives the next message in arrival order within the
// communicator (the receive side of the no-match proposal).
func (c *Comm) RecvNoMatch(buf []byte, count int, dt *Datatype) (Status, error) {
	req, err := c.IrecvNoMatch(buf, count, dt)
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}

// Iprobe checks for a matchable message without receiving it
// (MPI_IPROBE).
func (c *Comm) Iprobe(src, tag int) (Status, bool, error) {
	if err := checkHints(c.c, src, tag); err != nil {
		return Status{}, false, err
	}
	st, ok, err := c.p.dev.Iprobe(src, tag, c.c)
	if err != nil {
		return Status{}, false, errc(ErrOther, "%v", err)
	}
	return Status{Source: st.Source, Tag: st.Tag, Count: st.Count}, ok, nil
}

// Probe blocks until a matchable message is available (MPI_PROBE).
// The wait is event-driven: the rank parks between transport events
// instead of spinning.
func (c *Comm) Probe(src, tag int) (Status, error) {
	for {
		seq := c.p.dev.EventSeq()
		st, ok, err := c.Iprobe(src, tag)
		if err != nil || ok {
			return st, err
		}
		c.p.dev.WaitEvent(seq)
	}
}

// SendrecvReplace exchanges in place (MPI_SENDRECV_REPLACE): the buffer
// is sent to dest, then overwritten by the message from src.
func (c *Comm) SendrecvReplace(buf []byte, count int, dt *Datatype, dest, sendTag, src, recvTag int) (Status, error) {
	sreq, err := c.Isend(buf, count, dt, dest, sendTag)
	if err != nil {
		return Status{}, err
	}
	// Eager semantics: the payload was captured at injection, so
	// receiving into the same buffer is safe.
	st, err := c.Recv(buf, count, dt, src, recvTag)
	if err != nil {
		return st, err
	}
	_, err = sreq.Wait()
	return st, err
}

// Message is a matched-probe handle (MPI_Message): a message removed
// from matching by Improbe/Mprobe, to be received exactly once with
// Recv.
type Message struct {
	p       *Proc
	data    []byte
	src     int
	tag     int
	arrival int64
}

// Improbe extracts a matchable message without receiving it
// (MPI_IMPROBE). Once extracted, the message can no longer match any
// other receive; consume it with Message.Recv.
func (c *Comm) Improbe(src, tag int) (*Message, bool, error) {
	if err := checkHints(c.c, src, tag); err != nil {
		return nil, false, err
	}
	data, st, arrival, ok, err := c.p.dev.Improbe(src, tag, c.c)
	if err != nil {
		return nil, false, errc(ErrOther, "%v", err)
	}
	if !ok {
		return nil, false, nil
	}
	return &Message{p: c.p, data: data, src: st.Source, tag: st.Tag, arrival: int64(arrival)}, true, nil
}

// Mprobe blocks until a matchable message can be extracted
// (MPI_MPROBE).
func (c *Comm) Mprobe(src, tag int) (*Message, error) {
	for {
		seq := c.p.dev.EventSeq()
		m, ok, err := c.Improbe(src, tag)
		if err != nil || ok {
			return m, err
		}
		c.p.dev.WaitEvent(seq)
	}
}

// Size returns the extracted message's payload size in bytes.
func (m *Message) Size() int { return len(m.data) }

// Count returns the number of dt elements the extracted message
// carries (MPI_GET_COUNT on the matched-probe envelope), consistent
// with Status.GetCount: zero-byte messages count zero elements, and a
// payload that is not a whole number of elements reports
// UndefinedIndex.
func (m *Message) Count(dt *Datatype) int {
	return Status{Count: len(m.data)}.GetCount(dt)
}

// Recv consumes the extracted message into buf (MPI_MRECV). The
// message handle is dead afterward.
func (m *Message) Recv(buf []byte, count int, dt *Datatype) (Status, error) {
	if m.data == nil && m.p == nil {
		return Status{}, errc(ErrRequest, "message already received")
	}
	m.p.rank.Sync(vtimeFromInt(m.arrival))
	st := Status{Source: m.src, Tag: m.tag, Count: len(m.data)}
	var err error
	if view, ok := dtContigView(dt, count, buf); ok {
		if copy(view, m.data) < len(m.data) {
			err = statusErr(true)
		}
	} else {
		need := dtPackedSize(dt, count)
		if need < len(m.data) {
			err = statusErr(true)
		}
		n := len(m.data)
		if need < n {
			n = need
		}
		if _, uerr := dtUnpack(dt, count, m.data[:n], buf); uerr != nil && err == nil {
			err = errc(ErrType, "%v", uerr)
		}
	}
	m.p, m.data = nil, nil
	return st, err
}

// Sendrecv exchanges messages in one call (MPI_SENDRECV): the send is
// issued first (eager, never blocks), then the receive completes.
func (c *Comm) Sendrecv(sendBuf []byte, sendCount int, sendType *Datatype, dest, sendTag int,
	recvBuf []byte, recvCount int, recvType *Datatype, src, recvTag int) (Status, error) {
	sreq, err := c.Isend(sendBuf, sendCount, sendType, dest, sendTag)
	if err != nil {
		return Status{}, err
	}
	st, err := c.Recv(recvBuf, recvCount, recvType, src, recvTag)
	if err != nil {
		return st, err
	}
	_, err = sreq.Wait()
	return st, err
}
