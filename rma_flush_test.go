package gompi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"gompi/internal/rma"
)

// TestFlushCompletesWithoutClosingEpoch is the core of the flush-based
// redesign: data synchronization inside a passive-target epoch, no
// epoch churn. Rank 0 locks rank 1 once, puts, flushes, and the target
// observes the bytes while the epoch is still open.
func TestFlushCompletesWithoutClosingEpoch(t *testing.T) {
	for _, dev := range []DeviceKind{DeviceCH4, DeviceOriginal} {
		t.Run(string(dev), func(t *testing.T) {
			run(t, 2, Config{Device: dev, Fabric: "ofi"}, func(p *Proc) error {
				w := p.World()
				win, mem, err := w.WinAllocate(16, 1)
				if err != nil {
					return err
				}
				if p.Rank() == 0 {
					if err := win.Lock(1, true); err != nil {
						return err
					}
					for i := 0; i < 3; i++ {
						if err := win.Put([]byte{byte(10 + i)}, 1, Byte, 1, i); err != nil {
							return err
						}
						if err := win.Flush(1); err != nil {
							return err
						}
						if !win.w.InEpoch() {
							return errors.New("flush closed the epoch")
						}
					}
					if err := win.FlushLocal(1); err != nil {
						return err
					}
					if err := win.FlushAll(); err != nil {
						return err
					}
					if err := win.FlushLocalAll(); err != nil {
						return err
					}
					if err := win.Unlock(1); err != nil {
						return err
					}
					if err := w.Send([]byte{1}, 1, Byte, 1, 0); err != nil {
						return err
					}
				} else {
					buf := make([]byte, 1)
					if _, err := w.Recv(buf, 1, Byte, 0, 0); err != nil {
						return err
					}
					if !bytes.Equal(mem[:3], []byte{10, 11, 12}) {
						return fmt.Errorf("after flushes: %v", mem[:3])
					}
				}
				if err := w.Barrier(); err != nil {
					return err
				}
				return win.Free()
			})
		})
	}
}

// TestLockAllSingleEpoch pins the satellite-1 fix: LockAll is ONE epoch
// object of the EpochLockAll kind — not a stack of per-target Lock
// epochs — on both devices, and flushes against arbitrary targets work
// inside it.
func TestLockAllSingleEpoch(t *testing.T) {
	for _, dev := range []DeviceKind{DeviceCH4, DeviceOriginal} {
		t.Run(string(dev), func(t *testing.T) {
			const n = 4
			run(t, n, Config{Device: dev, Fabric: "ofi"}, func(p *Proc) error {
				w := p.World()
				win, mem, err := w.WinAllocate(n, 1)
				if err != nil {
					return err
				}
				if err := win.LockAll(); err != nil {
					return err
				}
				if win.w.Epoch != rma.EpochLockAll {
					return fmt.Errorf("epoch kind %v, want EpochLockAll", win.w.Epoch)
				}
				for target := 0; target < n; target++ {
					if err := win.Put([]byte{byte(p.Rank() + 1)}, 1, Byte, target, p.Rank()); err != nil {
						return err
					}
					if err := win.Flush(target); err != nil {
						return err
					}
				}
				if win.w.Epoch != rma.EpochLockAll {
					return fmt.Errorf("epoch kind after flushes %v", win.w.Epoch)
				}
				if err := win.UnlockAll(); err != nil {
					return err
				}
				if win.w.InEpoch() {
					return errors.New("UnlockAll left the epoch open")
				}
				if err := w.Barrier(); err != nil {
					return err
				}
				want := make([]byte, n)
				for i := range want {
					want[i] = byte(i + 1)
				}
				if !bytes.Equal(mem, want) {
					return fmt.Errorf("rank %d window %v, want %v", p.Rank(), mem, want)
				}
				return win.Free()
			})
		})
	}
}

// TestLockAllExclusivePhases serializes whole-window ownership: each
// rank takes the exclusive lock-all in turn and increments a counter on
// rank 0; the total proves mutual exclusion.
func TestLockAllExclusivePhases(t *testing.T) {
	const n = 4
	const iters = 8
	run(t, n, Config{Fabric: "inf"}, func(p *Proc) error {
		w := p.World()
		win, mem, err := w.WinAllocate(8, 1)
		if err != nil {
			return err
		}
		one := Int64Bytes([]int64{1}, nil)
		old := make([]byte, 8)
		for i := 0; i < iters; i++ {
			if err := win.LockAllExclusive(); err != nil {
				return err
			}
			if err := win.FetchAndOp(one, old, Long, 0, 0, OpSum); err != nil {
				return err
			}
			if err := win.UnlockAll(); err != nil {
				return err
			}
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			if got := BytesInt64(mem, nil)[0]; got != n*iters {
				return fmt.Errorf("counter %d, want %d", got, n*iters)
			}
		}
		return win.Free()
	})
}

// TestRequestBasedRMA drives Rput/Rget/Raccumulate through the public
// request machinery: the returned requests complete via Wait like any
// two-sided request.
func TestRequestBasedRMA(t *testing.T) {
	for _, dev := range []DeviceKind{DeviceCH4, DeviceOriginal} {
		t.Run(string(dev), func(t *testing.T) {
			run(t, 2, Config{Device: dev, Fabric: "ofi"}, func(p *Proc) error {
				w := p.World()
				win, mem, err := w.WinAllocate(24, 1)
				if err != nil {
					return err
				}
				if p.Rank() == 0 {
					if err := win.Lock(1, true); err != nil {
						return err
					}
					req, err := win.Rput([]byte("req"), 3, Byte, 1, 0)
					if err != nil {
						return err
					}
					if _, err := req.Wait(); err != nil {
						return err
					}
					areq, err := win.Raccumulate(Int64Bytes([]int64{5}, nil), 1, Long, 1, 8, OpSum)
					if err != nil {
						return err
					}
					if _, err := areq.Wait(); err != nil {
						return err
					}
					got := make([]byte, 3)
					greq, err := win.Rget(got, 3, Byte, 1, 0)
					if err != nil {
						return err
					}
					if _, err := greq.Wait(); err != nil {
						return err
					}
					if string(got) != "req" {
						return fmt.Errorf("rget %q", got)
					}
					if err := win.Unlock(1); err != nil {
						return err
					}
					if err := w.Send([]byte{1}, 1, Byte, 1, 0); err != nil {
						return err
					}
				} else {
					buf := make([]byte, 1)
					if _, err := w.Recv(buf, 1, Byte, 0, 0); err != nil {
						return err
					}
					if string(mem[:3]) != "req" {
						return fmt.Errorf("target window %q", mem[:3])
					}
					if got := BytesInt64(mem[8:16], nil)[0]; got != 5 {
						return fmt.Errorf("raccumulate landed %d", got)
					}
				}
				if err := w.Barrier(); err != nil {
					return err
				}
				return win.Free()
			})
		})
	}
}

// TestPutNotifyWaitNotify checks the notified-access ordering contract:
// a target returning from WaitNotify reads the data the notification
// covered, with no fence or receive of the payload anywhere.
func TestPutNotifyWaitNotify(t *testing.T) {
	for _, cfg := range []Config{
		{Device: "ch4", Fabric: "ofi"},
		{Device: "ch4", Fabric: "ofi", RanksPerNode: 2},
		{Device: "original", Fabric: "ofi"},
	} {
		t.Run(cfgName(cfg), func(t *testing.T) {
			var st Stats
			cfg := cfg
			cfg.Stats = &st
			run(t, 2, cfg, func(p *Proc) error {
				w := p.World()
				win, mem, err := w.WinAllocate(32, 1)
				if err != nil {
					return err
				}
				if err := win.LockAll(); err != nil {
					return err
				}
				if p.Rank() == 0 {
					if err := win.PutNotify([]byte("notified!"), 9, Byte, 1, 4); err != nil {
						return err
					}
				} else {
					src, err := win.WaitNotify(0)
					if err != nil {
						return err
					}
					if src != 0 {
						return fmt.Errorf("notified by %d", src)
					}
					if string(mem[4:13]) != "notified!" {
						return fmt.Errorf("window after notify %q", mem[4:13])
					}
				}
				if err := win.UnlockAll(); err != nil {
					return err
				}
				if err := w.Barrier(); err != nil {
					return err
				}
				return win.Free()
			})
			agg := st.Aggregate()
			if agg.Rma.Notifies < 2 {
				t.Errorf("RmaNotifies = %d, want >= 2 (sender + waiter)", agg.Rma.Notifies)
			}
			if agg.Lat.NotifyWait.Count != 1 {
				t.Errorf("NotifyWait observations = %d, want 1", agg.Lat.NotifyWait.Count)
			}
			if agg.Rma.Flushes == 0 {
				t.Error("PutNotify did not flush before notifying")
			}
		})
	}
}

// TestZeroCopyShmPutNoStagingCopies is the acceptance-criterion
// assertion: an intra-node Put on an allocated window performs zero
// staging copies — the payload lands directly in the target window —
// while the RmaStagedShm ablation stages every byte through the cell
// model.
func TestZeroCopyShmPutNoStagingCopies(t *testing.T) {
	const n = 8192
	for _, staged := range []bool{false, true} {
		name := "zerocopy"
		if staged {
			name = "staged"
		}
		t.Run(name, func(t *testing.T) {
			run(t, 2, Config{Device: "ch4", Fabric: "ofi", RanksPerNode: 2, RmaStagedShm: staged}, func(p *Proc) error {
				w := p.World()
				win, _, err := w.WinAllocate(n, 1)
				if err != nil {
					return err
				}
				if err := win.Lock(1, true); err != nil {
					if p.Rank() != 0 {
						return nil
					}
					return err
				}
				if p.Rank() == 0 {
					data := make([]byte, n)
					before := p.Metrics()
					if err := win.Put(data, n, Byte, 1, 0); err != nil {
						return err
					}
					after := p.Metrics()
					dStaged := after.CopiesStaged.Msgs - before.CopiesStaged.Msgs
					dDirect := after.CopiesDirect.Msgs - before.CopiesDirect.Msgs
					dBytes := after.CopiesDirect.Bytes - before.CopiesDirect.Bytes
					if staged {
						if dStaged == 0 {
							return errors.New("staged mode performed no staging copies")
						}
					} else {
						if dStaged != 0 {
							return fmt.Errorf("zero-copy put staged %d copies", dStaged)
						}
						if dDirect != 1 || dBytes != n {
							return fmt.Errorf("direct copies %d (%d bytes), want 1 (%d bytes)", dDirect, dBytes, n)
						}
					}
				}
				if err := win.Unlock(1); err != nil {
					return err
				}
				if err := w.Barrier(); err != nil {
					return err
				}
				return win.Free()
			})
		})
	}
}

// TestLockAllChaosMultiOrigin is the acceptance chaos test: every rank
// holds a shared LockAll epoch simultaneously and hammers rank 0 with
// atomic increments and its own window slot with puts, flushing
// mid-epoch, across devices and localities. Run under -race; the final
// counter and slots prove nothing was lost.
func TestLockAllChaosMultiOrigin(t *testing.T) {
	const n = 4
	const iters = 25
	for _, cfg := range []Config{
		{Device: "ch4", Fabric: "ofi"},
		{Device: "ch4", Fabric: "ofi", RanksPerNode: 2},
		{Device: "original", Fabric: "ofi"},
	} {
		t.Run(cfgName(cfg), func(t *testing.T) {
			run(t, n, cfg, func(p *Proc) error {
				w := p.World()
				win, mem, err := w.WinAllocate(8+n, 1)
				if err != nil {
					return err
				}
				if err := win.LockAll(); err != nil {
					return err
				}
				one := Int64Bytes([]int64{1}, nil)
				old := make([]byte, 8)
				for i := 0; i < iters; i++ {
					if err := win.FetchAndOp(one, old, Long, 0, 0, OpSum); err != nil {
						return err
					}
					for target := 0; target < n; target++ {
						if err := win.Put([]byte{byte(p.Rank() + 1)}, 1, Byte, target, 8+p.Rank()); err != nil {
							return err
						}
					}
					if i%5 == 0 {
						if err := win.Flush((p.Rank() + i) % n); err != nil {
							return err
						}
					}
				}
				if err := win.FlushAll(); err != nil {
					return err
				}
				if err := win.UnlockAll(); err != nil {
					return err
				}
				if err := w.Barrier(); err != nil {
					return err
				}
				if p.Rank() == 0 {
					if got := BytesInt64(mem[:8], nil)[0]; got != n*iters {
						return fmt.Errorf("chaos counter %d, want %d", got, n*iters)
					}
				}
				for r := 0; r < n; r++ {
					if mem[8+r] != byte(r+1) {
						return fmt.Errorf("rank %d slot %d = %d", p.Rank(), r, mem[8+r])
					}
				}
				return win.Free()
			})
		})
	}
}

// TestWatchdogDiagnosesParkedWaitNotify is the observability acceptance
// check: two ranks park in WaitNotify for notifications that never
// come; the watchdog must trip and the wait-graph diagnosis must show
// the notify machinery (the flight recorder's notify-wait events and
// the parked token receives).
func TestWatchdogDiagnosesParkedWaitNotify(t *testing.T) {
	var diag bytes.Buffer
	var st Stats
	cfg := Config{
		Device: "ch4", Fabric: "ofi",
		Watchdog:         true,
		WatchdogInterval: 5 * time.Millisecond,
		DiagWriter:       &diag,
		Stats:            &st,
	}
	err := Run(2, cfg, func(p *Proc) error {
		w := p.World()
		win, _, err := w.WinAllocate(8, 1)
		if err != nil {
			return err
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		// Nobody ever PutNotifies: both ranks park forever.
		_, err = win.WaitNotify(1 - p.Rank())
		return err
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	out := diag.String()
	if !bytes.Contains(diag.Bytes(), []byte("notify-wait")) {
		t.Errorf("diagnosis missing notify-wait flight events:\n%s", out)
	}
	for rank := 0; rank < 2; rank++ {
		want := fmt.Sprintf("src=%d tag=%d", 1-rank, tagWinNotify)
		if !bytes.Contains(diag.Bytes(), []byte(want)) {
			t.Errorf("diagnosis missing parked notify receive %q:\n%s", want, out)
		}
	}
	for _, want := range []string{"rank 0 waits on rank 1", "rank 1 waits on rank 0"} {
		if !bytes.Contains(diag.Bytes(), []byte(want)) {
			t.Errorf("diagnosis missing edge %q:\n%s", want, out)
		}
	}
}

// TestWinOptionsNoLocks pins the no_locks assertion: passive-target
// synchronization on such a window is a synchronization error.
func TestWinOptionsNoLocks(t *testing.T) {
	run(t, 2, Config{Fabric: "inf"}, func(p *Proc) error {
		w := p.World()
		win, _, err := w.WinAllocateOpt(8, 1, WinOptions{NoLocks: true, SameDispUnit: true})
		if err != nil {
			return err
		}
		if err := win.Lock(0, false); ClassOf(err) != ErrRMASync {
			return fmt.Errorf("Lock on NoLocks window: %v", err)
		}
		if err := win.LockAll(); ClassOf(err) != ErrRMASync {
			return fmt.Errorf("LockAll on NoLocks window: %v", err)
		}
		// Active-target synchronization still works.
		if err := win.Fence(); err != nil {
			return err
		}
		if err := win.Put([]byte{7}, 1, Byte, 1-p.Rank(), 0); err != nil {
			return err
		}
		if err := win.FenceEnd(); err != nil {
			return err
		}
		return win.Free()
	})
}

// TestPutOptFusedPath exercises the MPI_PUT_ALL_OPTS-style fused entry
// across localities and pins that partial option sets fall back to the
// validated path.
func TestPutOptFusedPath(t *testing.T) {
	for _, cfg := range []Config{
		{Device: "ch4", Fabric: "ofi"},
		{Device: "ch4", Fabric: "ofi", RanksPerNode: 2},
		{Device: "original", Fabric: "ofi"},
	} {
		t.Run(cfgName(cfg), func(t *testing.T) {
			run(t, 2, cfg, func(p *Proc) error {
				w := p.World()
				win, mem, err := w.WinAllocate(16, 1)
				if err != nil {
					return err
				}
				if err := win.Fence(); err != nil {
					return err
				}
				payload := []byte{0xA0 + byte(p.Rank())}
				if err := win.PutOpt(payload, 1, Byte, 1-p.Rank(), 3, AllPutOptions); err != nil {
					return err
				}
				if err := win.PutOpt(payload, 1, Byte, 1-p.Rank(), 5, PutOptions{NoProcNull: true}); err != nil {
					return err
				}
				if err := win.Fence(); err != nil {
					return err
				}
				want := byte(0xA0 + (1 - p.Rank()))
				if mem[3] != want || mem[5] != want {
					return fmt.Errorf("fused/fallback puts landed %v %v, want %v", mem[3], mem[5], want)
				}
				return win.Free()
			})
		})
	}
}

// rmaShmEcho pushes a size-byte pattern through an intra-node Put and
// reads it back with an intra-node Get, returning what the origin read.
// staged selects the RmaStagedShm ablation.
func rmaShmEcho(size int, staged bool) ([]byte, error) {
	got := make([]byte, size)
	err := Run(2, Config{Device: "ch4", Fabric: "ofi", RanksPerNode: 2, RmaStagedShm: staged, ShmEagerMax: 4096}, func(p *Proc) error {
		w := p.World()
		win, _, err := w.WinAllocate(size, 1)
		if err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			data := make([]byte, size)
			for i := range data {
				data[i] = byte((i*31 + 7) % 251)
			}
			if err := win.Put(data, size, Byte, 1, 0); err != nil {
				return err
			}
			if err := win.Flush(1); err != nil {
				return err
			}
			if err := win.Get(got, size, Byte, 1, 0); err != nil {
				return err
			}
		}
		if err := win.FenceEnd(); err != nil {
			return err
		}
		return win.Free()
	})
	return got, err
}

// FuzzRmaStagedZeroCopy differentially fuzzes the zero-copy and staged
// intra-node RMA arms: for any size — seeds straddle ShmEagerMax and
// cell boundaries — the bytes a Put deposits and a Get reads back must
// be identical whichever cost model carried them.
func FuzzRmaStagedZeroCopy(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(1))
	f.Add(uint32(4095))
	f.Add(uint32(4096))
	f.Add(uint32(4097))
	f.Add(uint32(3*4096 + 123))
	f.Add(uint32(65536))
	f.Fuzz(func(t *testing.T, size uint32) {
		size %= 1 << 17
		zero, err := rmaShmEcho(int(size), false)
		if err != nil {
			t.Fatalf("zero-copy run: %v", err)
		}
		staged, err := rmaShmEcho(int(size), true)
		if err != nil {
			t.Fatalf("staged run: %v", err)
		}
		if !bytes.Equal(zero, staged) {
			t.Fatalf("size %d: zero-copy and staged shm RMA differ", size)
		}
	})
}
