package gompi

import (
	"bytes"
	"fmt"
	"testing"
)

func TestPSCWBasic(t *testing.T) {
	for _, cfg := range []Config{
		{Device: "ch4", Fabric: "ofi"},
		{Device: "original", Fabric: "ofi"},
	} {
		t.Run(cfgName(cfg), func(t *testing.T) {
			run(t, 3, cfg, func(p *Proc) error {
				w := p.World()
				win, mem, err := w.WinAllocate(16, 1)
				if err != nil {
					return err
				}
				// Ranks 1 and 2 put into rank 0's window under PSCW.
				if p.Rank() == 0 {
					if err := win.Post([]int{1, 2}); err != nil {
						return err
					}
					if err := win.Wait(); err != nil {
						return err
					}
					if !bytes.Equal(mem[:2], []byte{11, 12}) {
						return fmt.Errorf("window after PSCW: %v", mem[:4])
					}
				} else {
					if err := win.Start([]int{0}); err != nil {
						return err
					}
					if err := win.Put([]byte{byte(10 + p.Rank())}, 1, Byte, 0, p.Rank()-1); err != nil {
						return err
					}
					if err := win.Complete(); err != nil {
						return err
					}
				}
				if err := w.Barrier(); err != nil {
					return err
				}
				return win.Free()
			})
		})
	}
}

func TestPSCWSubsetDoesNotBlockOthers(t *testing.T) {
	// Only ranks 0 and 1 synchronize; rank 2 never participates and
	// must proceed untouched.
	run(t, 3, Config{Fabric: "inf"}, func(p *Proc) error {
		w := p.World()
		win, mem, err := w.WinAllocate(8, 1)
		if err != nil {
			return err
		}
		switch p.Rank() {
		case 0:
			if err := win.Post([]int{1}); err != nil {
				return err
			}
			if err := win.Wait(); err != nil {
				return err
			}
			if mem[0] != 0x7A {
				return fmt.Errorf("byte = %x", mem[0])
			}
		case 1:
			if err := win.Start([]int{0}); err != nil {
				return err
			}
			if err := win.Put([]byte{0x7A}, 1, Byte, 0, 0); err != nil {
				return err
			}
			if err := win.Complete(); err != nil {
				return err
			}
		case 2:
			// Unsynchronized bystander.
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		return win.Free()
	})
}

func TestPSCWRepeatedEpochs(t *testing.T) {
	run(t, 2, Config{Fabric: "ucx"}, func(p *Proc) error {
		w := p.World()
		win, mem, err := w.WinAllocate(8, 1)
		if err != nil {
			return err
		}
		for epoch := 0; epoch < 5; epoch++ {
			if p.Rank() == 0 {
				if err := win.Post([]int{1}); err != nil {
					return err
				}
				if err := win.Wait(); err != nil {
					return err
				}
				if mem[0] != byte(epoch+1) {
					return fmt.Errorf("epoch %d: byte %d", epoch, mem[0])
				}
			} else {
				if err := win.Start([]int{0}); err != nil {
					return err
				}
				if err := win.Put([]byte{byte(epoch + 1)}, 1, Byte, 0, 0); err != nil {
					return err
				}
				if err := win.Complete(); err != nil {
					return err
				}
			}
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		return win.Free()
	})
}

func TestPSCWTimePropagation(t *testing.T) {
	// The target's clock must absorb the origin's put timing through
	// the complete token.
	run(t, 2, Config{Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		win, _, err := w.WinAllocate(8, 1)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			if err := win.Post([]int{1}); err != nil {
				return err
			}
			if err := win.Wait(); err != nil {
				return err
			}
			if p.VirtualCycles() < 2_000_000 {
				return fmt.Errorf("target clock %d did not absorb origin time", p.VirtualCycles())
			}
		} else {
			p.ChargeCompute(2_000_000) // origin runs long before the epoch
			if err := win.Start([]int{0}); err != nil {
				return err
			}
			if err := win.Put([]byte{1}, 1, Byte, 0, 0); err != nil {
				return err
			}
			if err := win.Complete(); err != nil {
				return err
			}
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		return win.Free()
	})
}

func TestPSCWStateValidation(t *testing.T) {
	run(t, 2, Config{}, func(p *Proc) error {
		w := p.World()
		win, _, err := w.WinAllocate(8, 1)
		if err != nil {
			return err
		}
		if err := win.Complete(); ClassOf(err) != ErrRMASync {
			return fmt.Errorf("complete without start: %v", err)
		}
		if err := win.Wait(); ClassOf(err) != ErrRMASync {
			return fmt.Errorf("wait without post: %v", err)
		}
		if p.Rank() == 0 {
			if err := win.Post([]int{1}); err != nil {
				return err
			}
			if err := win.Post([]int{1}); ClassOf(err) != ErrRMASync {
				return fmt.Errorf("double post: %v", err)
			}
		} else {
			if err := win.Start([]int{0}); err != nil {
				return err
			}
			if err := win.Complete(); err != nil {
				return err
			}
		}
		if p.Rank() == 0 {
			if err := win.Wait(); err != nil {
				return err
			}
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		return win.Free()
	})
}

func TestPSCWTestWait(t *testing.T) {
	run(t, 2, Config{Fabric: "inf"}, func(p *Proc) error {
		w := p.World()
		win, mem, err := w.WinAllocate(8, 1)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			if err := win.Post([]int{1}); err != nil {
				return err
			}
			for {
				done, err := win.TestWait()
				if err != nil {
					return err
				}
				if done {
					break
				}
			}
			if mem[0] != 0x42 {
				return fmt.Errorf("byte %x", mem[0])
			}
		} else {
			if err := win.Start([]int{0}); err != nil {
				return err
			}
			if err := win.Put([]byte{0x42}, 1, Byte, 0, 0); err != nil {
				return err
			}
			if err := win.Complete(); err != nil {
				return err
			}
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		return win.Free()
	})
}
