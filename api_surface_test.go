package gompi

import (
	"bytes"
	"fmt"
	"testing"
)

// Tests for API surface not covered by the scenario suites: group
// operations, datatype constructors, typed helpers, error rendering.

func TestGroupOperationsPublic(t *testing.T) {
	run(t, 6, Config{}, func(p *Proc) error {
		w := p.World()
		g := w.Group()
		if g.Size() != 6 || g.Rank(p.Rank()) != p.Rank() {
			return fmt.Errorf("world group wrong")
		}
		wr := g.WorldRanks()
		if len(wr) != 6 || wr[3] != 3 {
			return fmt.Errorf("world ranks %v", wr)
		}
		evens, err := g.Incl([]int{0, 2, 4})
		if err != nil {
			return err
		}
		odds, err := g.Excl([]int{0, 2, 4})
		if err != nil {
			return err
		}
		if evens.Size() != 3 || odds.Size() != 3 {
			return fmt.Errorf("incl/excl sizes %d/%d", evens.Size(), odds.Size())
		}
		if GroupUnion(evens, odds).Size() != 6 {
			return fmt.Errorf("union wrong")
		}
		if GroupIntersection(evens, odds).Size() != 0 {
			return fmt.Errorf("intersection wrong")
		}
		if GroupDifference(g, odds).Size() != 3 {
			return fmt.Errorf("difference wrong")
		}
		tr, err := TranslateRanks(evens, []int{0, 1, 2}, g)
		if err != nil {
			return err
		}
		if tr[0] != 0 || tr[1] != 2 || tr[2] != 4 {
			return fmt.Errorf("translate %v", tr)
		}
		if _, err := g.Incl([]int{9}); ClassOf(err) != ErrRank {
			return fmt.Errorf("bad incl: %v", err)
		}
		if _, err := g.Excl([]int{-1}); ClassOf(err) != ErrRank {
			return fmt.Errorf("bad excl: %v", err)
		}
		return nil
	})
}

func TestCommCreatePublic(t *testing.T) {
	run(t, 4, Config{}, func(p *Proc) error {
		w := p.World()
		g, err := w.Group().Incl([]int{1, 3})
		if err != nil {
			return err
		}
		sub, err := w.Create(g)
		if err != nil {
			return err
		}
		if p.Rank()%2 == 0 {
			if sub != nil {
				return fmt.Errorf("non-member got a communicator")
			}
			return nil
		}
		if sub.Size() != 2 || sub.Rank() != p.Rank()/2 {
			return fmt.Errorf("sub %d/%d", sub.Rank(), sub.Size())
		}
		// It must carry traffic.
		if sub.Rank() == 0 {
			return sub.Send([]byte{1}, 1, Byte, 1, 0)
		}
		buf := make([]byte, 1)
		_, err = sub.Recv(buf, 1, Byte, 0, 0)
		return err
	})
}

func TestPublicTypeConstructors(t *testing.T) {
	ct, err := TypeContiguous(4, Int)
	if err != nil || ct.Size() != 16 {
		t.Fatalf("contiguous: %v %d", err, ct.Size())
	}
	hv, err := TypeHvector(2, 1, 12, Int)
	if err != nil || hv.Extent() != 16 {
		t.Fatalf("hvector: %v", err)
	}
	ix, err := TypeIndexed([]int{1, 1}, []int{0, 3}, Int)
	if err != nil || ix.Size() != 8 {
		t.Fatalf("indexed: %v", err)
	}
	st, err := TypeStruct([]int{1, 1}, []int{0, 8}, []*Datatype{Int, Double})
	if err != nil || st.Size() != 12 {
		t.Fatalf("struct: %v", err)
	}
	sa, err := TypeSubarray([]int{4, 4}, []int{2, 2}, []int{0, 0}, Byte)
	if err != nil || sa.Size() != 4 {
		t.Fatalf("subarray: %v", err)
	}
	rz, err := TypeResized(Int, 16)
	if err != nil || rz.Extent() != 16 {
		t.Fatalf("resized: %v", err)
	}
	dup := TypeDup(ct)
	if dup.Size() != ct.Size() {
		t.Fatal("dup size")
	}
	if _, err := TypeContiguous(-1, Int); ClassOf(err) != ErrType {
		t.Fatalf("bad contiguous: %v", err)
	}
	if _, err := TypeSubarray([]int{2}, []int{3}, []int{0}, Byte); ClassOf(err) != ErrType {
		t.Fatalf("bad subarray: %v", err)
	}
}

func TestInt32Helpers(t *testing.T) {
	vals := []int32{-5, 1 << 30, 42}
	wire := Int32Bytes(vals, nil)
	if len(wire) != 12 {
		t.Fatalf("wire %d bytes", len(wire))
	}
	back := BytesInt32(wire, nil)
	for i := range vals {
		if back[i] != vals[i] {
			t.Fatalf("roundtrip %v -> %v", vals, back)
		}
	}
	// Reuse paths.
	wire2 := Int32Bytes(vals, wire)
	if &wire2[0] != &wire[0] {
		t.Error("Int32Bytes did not reuse buffer")
	}
	back2 := BytesInt32(wire, back)
	if &back2[0] != &back[0] {
		t.Error("BytesInt32 did not reuse slice")
	}
}

func TestErrorRendering(t *testing.T) {
	classes := []ErrorClass{ErrNone, ErrBuffer, ErrCount, ErrType, ErrTag, ErrComm,
		ErrRank, ErrRequest, ErrTruncate, ErrWin, ErrRMASync, ErrArg, ErrOther, ErrHint}
	for _, c := range classes {
		if c.String() == "" {
			t.Errorf("class %d has no name", c)
		}
	}
	e := errc(ErrRank, "rank %d bad", 7)
	if e.Error() != "MPI_ERR_RANK: rank 7 bad" {
		t.Errorf("error rendering: %q", e.Error())
	}
	if ClassOf(fmt.Errorf("foreign")) != ErrOther {
		t.Error("foreign error class")
	}
	if ErrorClass(99).String() != "MPI_ERR_OTHER" {
		t.Error("unknown class name")
	}
}

func TestProgressAndInfoPublic(t *testing.T) {
	run(t, 2, Config{}, func(p *Proc) error {
		p.Progress() // must be callable anytime
		w := p.World()
		w.SetInfo("key", "value")
		if v, ok := w.Info("key"); !ok || v != "value" {
			return fmt.Errorf("info hint lost")
		}
		if _, ok := w.Info("missing"); ok {
			return fmt.Errorf("phantom hint")
		}
		return w.Barrier()
	})
}

func TestPersistentTestPolling(t *testing.T) {
	run(t, 2, Config{Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			p.ChargeCompute(100_000)
			return w.Send([]byte{9}, 1, Byte, 1, 0)
		}
		buf := make([]byte, 1)
		op, err := w.RecvInit(buf, 1, Byte, 0, 0)
		if err != nil {
			return err
		}
		if _, _, err := op.Test(); ClassOf(err) != ErrRequest {
			return fmt.Errorf("test before start: %v", err)
		}
		if err := op.Start(); err != nil {
			return err
		}
		for {
			st, done, err := op.Test()
			if err != nil {
				return err
			}
			if done {
				if st.Count != 1 || buf[0] != 9 {
					return fmt.Errorf("completion %+v %v", st, buf)
				}
				return nil
			}
		}
	})
}

func TestIsendOptCombinations(t *testing.T) {
	run(t, 2, Config{Fabric: "inf"}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			combos := []SendOptions{
				{},
				{NoProcNull: true},
				{NoReq: true, NoMatch: true},
				{GlobalRank: true, NoProcNull: true, NoReq: true, NoMatch: true},
			}
			for i, o := range combos {
				req, err := w.IsendOpt([]byte{byte(i)}, 1, Byte, 1, 0, o)
				if err != nil {
					return err
				}
				if o.NoReq && req != nil {
					return fmt.Errorf("noreq combo returned a request")
				}
				if _, err := req.Wait(); err != nil {
					return err
				}
			}
			return w.CommWaitall()
		}
		for i := 0; i < 4; i++ {
			buf := make([]byte, 1)
			if _, err := w.RecvNoMatch(buf, 1, Byte); err != nil {
				return err
			}
			if buf[0] != byte(i) {
				return fmt.Errorf("combo %d delivered %d", i, buf[0])
			}
		}
		return nil
	})
}

func TestWinMemAndBaseAddr(t *testing.T) {
	run(t, 2, Config{}, func(p *Proc) error {
		w := p.World()
		win, mem, err := w.WinAllocate(32, 1)
		if err != nil {
			return err
		}
		if !bytes.Equal(win.Mem(), mem) || len(win.Mem()) != 32 {
			return fmt.Errorf("window memory mismatch")
		}
		if win.BaseAddr(1) != 0 {
			return fmt.Errorf("base addr %d", win.BaseAddr(1))
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		return win.Free()
	})
}

func TestGetVirtualAddrPublic(t *testing.T) {
	run(t, 2, Config{Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		win, mem, err := w.WinAllocate(16, 4)
		if err != nil {
			return err
		}
		if p.Rank() == 1 {
			copy(mem[8:], []byte{0xAA, 0xBB})
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			buf := make([]byte, 2)
			if err := win.GetVirtualAddr(buf, 2, Byte, 1, win.BaseAddr(1)+8); err != nil {
				return err
			}
			if buf[0] != 0xAA || buf[1] != 0xBB {
				return fmt.Errorf("va get %v", buf)
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		return win.Free()
	})
}

func TestPublicPackUnpack(t *testing.T) {
	vec, err := TypeVector(2, 1, 2, Byte)
	if err != nil {
		t.Fatal(err)
	}
	if err := vec.Commit(); err != nil {
		t.Fatal(err)
	}
	if PackedSize(1, vec) != 2 {
		t.Fatalf("packed size %d", PackedSize(1, vec))
	}
	src := []byte{'a', 'b', 'c', 'd'}
	wire := make([]byte, 2)
	n, err := Pack(src, 1, vec, wire)
	if err != nil || n != 2 || string(wire) != "ac" {
		t.Fatalf("pack (%d,%v) %q", n, err, wire)
	}
	dst := []byte{'.', '.', '.', '.'}
	if _, err := Unpack(wire, 1, vec, dst); err != nil {
		t.Fatal(err)
	}
	if string(dst) != "a.c." {
		t.Fatalf("unpack %q", dst)
	}
	// Uncommitted type errors through the public wrapper.
	raw, _ := TypeVector(2, 1, 2, Byte)
	if _, err := Pack(src, 1, raw, wire); ClassOf(err) != ErrType {
		t.Fatalf("uncommitted pack: %v", err)
	}
}

func TestStatusGetCount(t *testing.T) {
	st := Status{Count: 24}
	if st.GetCount(Double) != 3 {
		t.Fatalf("GetCount(Double) = %d", st.GetCount(Double))
	}
	if st.GetCount(Int) != 6 {
		t.Fatalf("GetCount(Int) = %d", st.GetCount(Int))
	}
	odd := Status{Count: 10}
	if odd.GetCount(Double) != UndefinedIndex {
		t.Fatalf("partial element not UNDEFINED")
	}
	if (Status{}).GetCount(nil) != 0 {
		t.Fatalf("empty status with nil type")
	}
}

// TestWinAPISurfacePinned pins the redesigned one-sided surface at
// compile time: the flush family, the single-epoch lock-all pair, the
// request-based operations, notified access, the option structs, and
// the deprecation-shim guarantee that pre-redesign signatures
// (Fence/Lock/Flush/LockAll/UnlockAll) still compile unchanged.
func TestWinAPISurfacePinned(t *testing.T) {
	w := (*Win)(nil)
	var (
		_ func() error                                                 = w.Fence
		_ func() error                                                 = w.FenceEnd
		_ func(int, bool) error                                        = w.Lock
		_ func(int) error                                              = w.Unlock
		_ func() error                                                 = w.LockAll
		_ func() error                                                 = w.LockAllExclusive
		_ func() error                                                 = w.UnlockAll
		_ func(int) error                                              = w.Flush
		_ func(int) error                                              = w.FlushLocal
		_ func() error                                                 = w.FlushAll
		_ func() error                                                 = w.FlushLocalAll
		_ func([]byte, int, *Datatype, int, int) (*Request, error)     = w.Rput
		_ func([]byte, int, *Datatype, int, int) (*Request, error)     = w.Rget
		_ func([]byte, int, *Datatype, int, int, Op) (*Request, error) = w.Raccumulate
		_ func([]byte, int, *Datatype, int, int) error                 = w.PutNotify
		_ func(int) (int, error)                                       = w.WaitNotify
		_ func([]byte, int, *Datatype, int, int, PutOptions) error     = w.PutOpt
	)
	var c *Comm
	var (
		_ func([]byte, int, WinOptions) (*Win, error)      = c.WinCreateOpt
		_ func(int, int, WinOptions) (*Win, []byte, error) = c.WinAllocateOpt
	)
	if AllPutOptions != (PutOptions{GlobalRank: true, NoProcNull: true}) {
		t.Error("AllPutOptions must assert every fast-path option")
	}
	var o WinOptions
	o.NoLocks, o.SameDispUnit = true, true
}

// TestRmaConfigKnob pins the staged-shm ablation knob and the trace
// kind re-exports the RMA observability added with the flush redesign.
func TestRmaConfigKnob(t *testing.T) {
	var cfg Config
	cfg.RmaStagedShm = true
	if TraceFlush.String() != "rma-flush" || TraceNotify.String() != "rma-notify" {
		t.Errorf("trace kinds: %s, %s", TraceFlush, TraceNotify)
	}
}
