package gompi

import (
	"gompi/internal/datatype"
	"gompi/internal/vtime"
)

// Bridging helpers for the matched-probe receive path.

func vtimeFromInt(v int64) vtime.Time { return vtime.Time(v) }

func dtContigView(dt *Datatype, count int, buf []byte) ([]byte, bool) {
	return datatype.ContigView(dt, count, buf)
}

func dtPackedSize(dt *Datatype, count int) int {
	return datatype.PackedSize(dt, count)
}

func dtUnpack(dt *Datatype, count int, src, dst []byte) (int, error) {
	return datatype.Unpack(dt, count, src, dst)
}
