package gompi

import (
	"encoding/binary"
	"math"

	"gompi/internal/datatype"
)

// Datatype describes the layout of communicated data. Predefined types
// are package variables; derived types come from the constructors below
// and must be committed before use, exactly as in MPI.
type Datatype = datatype.Type

// Predefined datatypes.
var (
	Byte   = datatype.Byte
	Char   = datatype.Char
	Short  = datatype.Short
	Int    = datatype.Int
	Long   = datatype.Long
	Float  = datatype.Float
	Double = datatype.Double
)

// TypeContiguous builds count consecutive elements of base
// (MPI_TYPE_CONTIGUOUS).
func TypeContiguous(count int, base *Datatype) (*Datatype, error) {
	return wrapType(datatype.NewContiguous(count, base))
}

// TypeVector builds count blocks of blocklen elements spaced stride
// elements apart (MPI_TYPE_VECTOR).
func TypeVector(count, blocklen, stride int, base *Datatype) (*Datatype, error) {
	return wrapType(datatype.NewVector(count, blocklen, stride, base))
}

// TypeHvector is TypeVector with the stride in bytes
// (MPI_TYPE_CREATE_HVECTOR).
func TypeHvector(count, blocklen, strideBytes int, base *Datatype) (*Datatype, error) {
	return wrapType(datatype.NewHvector(count, blocklen, strideBytes, base))
}

// TypeIndexed builds blocks of varying lengths at element displacements
// (MPI_TYPE_INDEXED).
func TypeIndexed(blocklens, displs []int, base *Datatype) (*Datatype, error) {
	return wrapType(datatype.NewIndexed(blocklens, displs, base))
}

// TypeStruct builds a heterogeneous layout at byte displacements
// (MPI_TYPE_CREATE_STRUCT).
func TypeStruct(blocklens, displs []int, types []*Datatype) (*Datatype, error) {
	return wrapType(datatype.NewStruct(blocklens, displs, types))
}

// TypeSubarray selects an n-dimensional box of a C-order array
// (MPI_TYPE_CREATE_SUBARRAY).
func TypeSubarray(sizes, subsizes, starts []int, base *Datatype) (*Datatype, error) {
	return wrapType(datatype.NewSubarray(sizes, subsizes, starts, base))
}

// TypeResized overrides a type's extent for interleaved layouts
// (MPI_TYPE_CREATE_RESIZED with lb=0).
func TypeResized(base *Datatype, extent int) (*Datatype, error) {
	return wrapType(datatype.NewResized(base, extent))
}

// TypeDup returns an independent copy of a datatype (MPI_TYPE_DUP).
func TypeDup(t *Datatype) *Datatype { return t.Dup() }

func wrapType(t *datatype.Type, err error) (*Datatype, error) {
	if err != nil {
		return nil, errc(ErrType, "%v", err)
	}
	return t, nil
}

// PackedSize returns the wire size of count elements of dt
// (MPI_PACK_SIZE).
func PackedSize(count int, dt *Datatype) int {
	return datatype.PackedSize(dt, count)
}

// Pack serializes count elements of dt from the laid-out inbuf into
// outbuf, returning the bytes written (MPI_PACK). The type must be
// committed.
func Pack(inbuf []byte, count int, dt *Datatype, outbuf []byte) (int, error) {
	n, err := datatype.Pack(dt, count, inbuf, outbuf)
	if err != nil {
		return n, errc(ErrType, "%v", err)
	}
	return n, nil
}

// Unpack deserializes count elements of dt from the packed inbuf into
// the laid-out outbuf, returning the bytes consumed (MPI_UNPACK).
func Unpack(inbuf []byte, count int, dt *Datatype, outbuf []byte) (int, error) {
	n, err := datatype.Unpack(dt, count, inbuf, outbuf)
	if err != nil {
		return n, errc(ErrType, "%v", err)
	}
	return n, nil
}

// --- buffer conversion helpers ----------------------------------------
//
// The library moves bytes; these helpers convert typed Go slices to and
// from the little-endian wire layout the reduction operators consume.

// Float64Bytes encodes vals into (a fresh or reused) buffer of
// 8*len(vals) bytes.
func Float64Bytes(vals []float64, buf []byte) []byte {
	if cap(buf) < 8*len(vals) {
		buf = make([]byte, 8*len(vals))
	}
	buf = buf[:8*len(vals)]
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

// BytesFloat64 decodes buf into vals (which must hold len(buf)/8
// elements) and returns it.
func BytesFloat64(buf []byte, vals []float64) []float64 {
	n := len(buf) / 8
	if cap(vals) < n {
		vals = make([]float64, n)
	}
	vals = vals[:n]
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return vals
}

// Int64Bytes encodes vals as MPI_LONG wire bytes.
func Int64Bytes(vals []int64, buf []byte) []byte {
	if cap(buf) < 8*len(vals) {
		buf = make([]byte, 8*len(vals))
	}
	buf = buf[:8*len(vals)]
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	return buf
}

// BytesInt64 decodes MPI_LONG wire bytes.
func BytesInt64(buf []byte, vals []int64) []int64 {
	n := len(buf) / 8
	if cap(vals) < n {
		vals = make([]int64, n)
	}
	vals = vals[:n]
	for i := range vals {
		vals[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return vals
}

// Int32Bytes encodes vals as MPI_INT wire bytes.
func Int32Bytes(vals []int32, buf []byte) []byte {
	if cap(buf) < 4*len(vals) {
		buf = make([]byte, 4*len(vals))
	}
	buf = buf[:4*len(vals)]
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return buf
}

// BytesInt32 decodes MPI_INT wire bytes.
func BytesInt32(buf []byte, vals []int32) []int32 {
	n := len(buf) / 4
	if cap(vals) < n {
		vals = make([]int32, n)
	}
	vals = vals[:n]
	for i := range vals {
		vals[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return vals
}
