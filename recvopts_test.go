package gompi

import (
	"fmt"
	"testing"
)

// TestWrappersMatchIrecvOpt pins the receive-side consolidation: every
// named receive variant costs exactly as many instructions as IrecvOpt
// with the equivalent RecvOptions — the wrappers are zero-overhead.
// Receives are posted (and measured) before the matching sends exist,
// so every measurement takes the posted-queue path.
func TestWrappersMatchIrecvOpt(t *testing.T) {
	run(t, 2, ipoCfg, func(p *Proc) error {
		w := p.World()
		if _, err := w.DupPredefined(Comm1); err != nil {
			return err
		}
		c := p.PredefComm(Comm1)
		if p.Rank() != 0 {
			if err := w.Barrier(); err != nil {
				return err
			}
			buf := []byte{1}
			// Two matched sends per matched pair, two arrival-order
			// sends for the NoMatch pair, two on the predefined comm.
			for tag := 0; tag < 2; tag++ {
				if _, err := w.Isend(buf, 1, Byte, 0, tag); err != nil {
					return err
				}
			}
			for i := 0; i < 2; i++ {
				if _, err := w.IsendNoMatch(buf, 1, Byte, 0); err != nil {
					return err
				}
			}
			for tag := 0; tag < 2; tag++ {
				if _, err := c.Isend(buf, 1, Byte, 0, tag); err != nil {
					return err
				}
			}
			return w.CommWaitall()
		}
		bufs := make([][]byte, 0, 6)
		reqs := make([]*Request, 0, 6)
		post := func(f func(buf []byte) (*Request, error)) (int64, error) {
			buf := make([]byte, 1)
			before := p.Counters()
			req, err := f(buf)
			if err != nil {
				return 0, err
			}
			cost := p.Counters().Sub(before).TotalInstr
			bufs = append(bufs, buf)
			reqs = append(reqs, req)
			return cost, nil
		}
		type pair struct {
			name    string
			wrapper func(buf []byte) (*Request, error)
			opt     func(buf []byte) (*Request, error)
		}
		pairs := []pair{
			{"IrecvNPN",
				func(buf []byte) (*Request, error) { return w.IrecvNPN(buf, 1, Byte, 1, 0) },
				func(buf []byte) (*Request, error) {
					return w.IrecvOpt(buf, 1, Byte, 1, 1, RecvOptions{NoProcNull: true})
				}},
			{"IrecvNoMatch",
				func(buf []byte) (*Request, error) { return w.IrecvNoMatch(buf, 1, Byte) },
				func(buf []byte) (*Request, error) {
					return w.IrecvOpt(buf, 1, Byte, AnySource, AnyTag, RecvOptions{NoMatch: true})
				}},
			{"IrecvPredef",
				func(buf []byte) (*Request, error) { return p.IrecvPredef(Comm1, buf, 1, Byte, 1, 0) },
				func(buf []byte) (*Request, error) {
					return c.IrecvOpt(buf, 1, Byte, 1, 1, RecvOptions{PredefComm: true})
				}},
		}
		for _, pr := range pairs {
			viaWrapper, err := post(pr.wrapper)
			if err != nil {
				return err
			}
			viaOpt, err := post(pr.opt)
			if err != nil {
				return err
			}
			if viaWrapper != viaOpt {
				return fmt.Errorf("%s costs %d instructions, IrecvOpt equivalent %d",
					pr.name, viaWrapper, viaOpt)
			}
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		for i, req := range reqs {
			if _, err := req.Wait(); err != nil {
				return err
			}
			if bufs[i][0] != 1 {
				return fmt.Errorf("receive %d delivered %d, want 1", i, bufs[i][0])
			}
		}
		return nil
	})
}

// TestIrecvOptSavesOverPlain pins that the receive-side proposals
// actually shave instructions: an NPN receive on a posted queue is
// strictly cheaper than the plain Irecv equivalent, and a predefined
// -comm receive is strictly cheaper than the same receive through the
// dynamic handle.
func TestIrecvOptSavesOverPlain(t *testing.T) {
	run(t, 2, ipoCfg, func(p *Proc) error {
		w := p.World()
		if _, err := w.DupPredefined(Comm1); err != nil {
			return err
		}
		c := p.PredefComm(Comm1)
		if p.Rank() != 0 {
			if err := w.Barrier(); err != nil {
				return err
			}
			buf := []byte{1}
			for tag := 0; tag < 2; tag++ {
				if _, err := w.Isend(buf, 1, Byte, 0, tag); err != nil {
					return err
				}
			}
			for tag := 0; tag < 2; tag++ {
				if _, err := c.Isend(buf, 1, Byte, 0, tag); err != nil {
					return err
				}
			}
			return w.CommWaitall()
		}
		measure := func(f func(buf []byte) (*Request, error)) (*Request, int64, error) {
			buf := make([]byte, 1)
			before := p.Counters()
			req, err := f(buf)
			if err != nil {
				return nil, 0, err
			}
			return req, p.Counters().Sub(before).TotalInstr, nil
		}
		r1, plain, err := measure(func(buf []byte) (*Request, error) { return w.Irecv(buf, 1, Byte, 1, 0) })
		if err != nil {
			return err
		}
		r2, npn, err := measure(func(buf []byte) (*Request, error) { return w.IrecvNPN(buf, 1, Byte, 1, 1) })
		if err != nil {
			return err
		}
		r3, dynamic, err := measure(func(buf []byte) (*Request, error) { return c.Irecv(buf, 1, Byte, 1, 0) })
		if err != nil {
			return err
		}
		r4, predef, err := measure(func(buf []byte) (*Request, error) { return p.IrecvPredef(Comm1, buf, 1, Byte, 1, 1) })
		if err != nil {
			return err
		}
		if npn >= plain {
			return fmt.Errorf("IrecvNPN costs %d instructions, plain Irecv %d; want a saving", npn, plain)
		}
		if predef >= dynamic {
			return fmt.Errorf("IrecvPredef costs %d instructions, dynamic-handle Irecv %d; want a saving", predef, dynamic)
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		for _, req := range []*Request{r1, r2, r3, r4} {
			if _, err := req.Wait(); err != nil {
				return err
			}
		}
		return nil
	})
}
