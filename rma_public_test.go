package gompi

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestWinPutGetFencePublic(t *testing.T) {
	for _, cfg := range []Config{
		{Device: "ch4", Fabric: "ofi"},
		{Device: "ch4", Fabric: "inf"},
		{Device: "original", Fabric: "ofi"},
	} {
		t.Run(cfgName(cfg), func(t *testing.T) {
			run(t, 3, cfg, func(p *Proc) error {
				w := p.World()
				win, mem, err := w.WinAllocate(64, 1)
				if err != nil {
					return err
				}
				if err := win.Fence(); err != nil {
					return err
				}
				// Everyone puts its rank byte at offset rank into rank 0.
				if err := win.Put([]byte{byte(p.Rank() + 1)}, 1, Byte, 0, p.Rank()); err != nil {
					return err
				}
				if err := win.Fence(); err != nil {
					return err
				}
				if p.Rank() == 0 {
					if !bytes.Equal(mem[:3], []byte{1, 2, 3}) {
						return fmt.Errorf("window after puts: %v", mem[:3])
					}
				}
				// Everyone reads rank 0's first three bytes.
				buf := make([]byte, 3)
				if err := win.Get(buf, 3, Byte, 0, 0); err != nil {
					return err
				}
				if err := win.Fence(); err != nil {
					return err
				}
				if !bytes.Equal(buf, []byte{1, 2, 3}) {
					return fmt.Errorf("rank %d get: %v", p.Rank(), buf)
				}
				return win.Free()
			})
		})
	}
}

func TestRMAOutsideEpochRejected(t *testing.T) {
	run(t, 2, Config{Build: "default"}, func(p *Proc) error {
		w := p.World()
		win, _, err := w.WinAllocate(8, 1)
		if err != nil {
			return err
		}
		if err := win.Put([]byte{1}, 1, Byte, 1, 0); ClassOf(err) != ErrRMASync {
			return fmt.Errorf("put outside epoch: %v", err)
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		return win.Free()
	})
}

func TestAccumulatePublic(t *testing.T) {
	const n = 4
	run(t, n, Config{Fabric: "ucx"}, func(p *Proc) error {
		w := p.World()
		win, mem, err := w.WinAllocate(8, 1)
		if err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		contrib := Int64Bytes([]int64{int64(p.Rank() + 1)}, nil)
		if err := win.Accumulate(contrib, 1, Long, 0, 0, OpSum); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			if got := BytesInt64(mem, nil)[0]; got != n*(n+1)/2 {
				return fmt.Errorf("accumulate total %d", got)
			}
		}
		return win.Free()
	})
}

func TestFetchAndOpPublic(t *testing.T) {
	// A classic one-sided counter: each rank fetches-and-adds 1 on rank
	// 0 under exclusive locks; the fetched values must be distinct.
	const n = 4
	run(t, n, Config{Fabric: "inf"}, func(p *Proc) error {
		w := p.World()
		win, mem, err := w.WinAllocate(8, 1)
		if err != nil {
			return err
		}
		if err := win.Lock(0, true); err != nil {
			return err
		}
		one := Int64Bytes([]int64{1}, nil)
		old := make([]byte, 8)
		if err := win.FetchAndOp(one, old, Long, 0, 0, OpSum); err != nil {
			return err
		}
		if err := win.Unlock(0); err != nil {
			return err
		}
		got := BytesInt64(old, nil)[0]
		if got < 0 || got >= n {
			return fmt.Errorf("fetched %d", got)
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			if total := BytesInt64(mem, nil)[0]; total != n {
				return fmt.Errorf("counter = %d, want %d", total, n)
			}
		}
		return win.Free()
	})
}

func TestPutVirtualAddrPublic(t *testing.T) {
	run(t, 2, Config{Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		win, mem, err := w.WinAllocate(32, 4) // disp unit 4: VA path skips the scaling
		if err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			// The app tracked the remote address: base + byte 12.
			addr := win.BaseAddr(1) + 12
			if err := win.PutVirtualAddr([]byte("VA"), 2, Byte, 1, addr); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 1 && string(mem[12:14]) != "VA" {
			return fmt.Errorf("VA put landed %q", mem[10:16])
		}
		return win.Free()
	})
}

func TestDynamicWindowPublic(t *testing.T) {
	run(t, 2, Config{Fabric: "inf"}, func(p *Proc) error {
		w := p.World()
		win, err := w.WinCreateDynamic()
		if err != nil {
			return err
		}
		var va VAddr
		mem := make([]byte, 16)
		if p.Rank() == 1 {
			va, err = win.Attach(mem)
			if err != nil {
				return err
			}
		}
		// Distribute the address via ordinary messaging, as an
		// application would.
		if p.Rank() == 1 {
			if err := w.Send(Int64Bytes([]int64{int64(va)}, nil), 8, Byte, 0, 0); err != nil {
				return err
			}
		} else {
			buf := make([]byte, 8)
			if _, err := w.Recv(buf, 8, Byte, 1, 0); err != nil {
				return err
			}
			va = VAddr(BytesInt64(buf, nil)[0])
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			if err := win.PutVirtualAddr([]byte{0xCD}, 1, Byte, 1, va+5); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 1 {
			if mem[5] != 0xCD {
				return fmt.Errorf("dynamic put landed %v", mem)
			}
			if err := win.Detach(mem, va); err != nil {
				return err
			}
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		return win.Free()
	})
}

func TestGetAccumulatePublic(t *testing.T) {
	run(t, 2, Config{}, func(p *Proc) error {
		w := p.World()
		win, mem, err := w.WinAllocate(8, 1)
		if err != nil {
			return err
		}
		if p.Rank() == 1 {
			copy(mem, Int64Bytes([]int64{50}, nil))
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			add := Int64Bytes([]int64{8}, nil)
			old := make([]byte, 8)
			if err := win.GetAccumulate(add, old, 1, Long, 1, 0, OpSum); err != nil {
				return err
			}
			if got := BytesInt64(old, nil)[0]; got != 50 {
				return fmt.Errorf("fetched %d, want 50", got)
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 1 {
			if got := BytesInt64(mem, nil)[0]; got != 58 {
				return fmt.Errorf("target %d, want 58", got)
			}
		}
		return win.Free()
	})
}

func TestLockAllSharedPhase(t *testing.T) {
	const n = 4
	run(t, n, Config{Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		win, mem, err := w.WinAllocate(8*n, 8)
		if err != nil {
			return err
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		// Everyone puts into everyone's slot for the writer's rank.
		val := Int64Bytes([]int64{int64(p.Rank() + 1)}, nil)
		for target := 0; target < n; target++ {
			if err := win.Put(val, 8, Byte, target, p.Rank()); err != nil {
				return err
			}
		}
		for target := 0; target < n; target++ {
			if err := win.Flush(target); err != nil {
				return err
			}
		}
		if err := win.UnlockAll(); err != nil {
			return err
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		got := BytesInt64(mem, nil)
		for r := 0; r < n; r++ {
			if got[r] != int64(r+1) {
				return fmt.Errorf("slot %d = %d (%v)", r, got[r], got)
			}
		}
		return win.Free()
	})
}

func TestAbortPublic(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- Run(3, Config{Fabric: "inf"}, func(p *Proc) error {
			if p.Rank() == 1 {
				p.Abort(42)
			}
			buf := make([]byte, 1)
			_, err := p.World().Recv(buf, 1, Byte, 1, 0)
			return err
		})
	}()
	err := <-done
	if err == nil || !strings.Contains(err.Error(), "MPI_ABORT") || !strings.Contains(err.Error(), "42") {
		t.Fatalf("abort error = %v", err)
	}
}
